package sim

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/compile"
	"repro/internal/verilog"
)

// This file is the four-state half of the lane-parallel lowering: the same
// packed/per-lane hybrid as lanes.go over paired Val/Unk planes. Packed
// single-bit kernels apply the v4.go per-bit formulas word-wide (v4And's
// absorption, v4Or, v4Xor, v4Not and v4Merge are all bitwise, so one word
// op evaluates them for 64 lanes); everything wider falls back to per-lane
// loops over the exact V4 operator functions shared with plan4.go and the
// reference interpreter.

// laneBit4Fn evaluates a packed four-state expression: bit l of val/unk is
// lane l's canonical single-bit value (val is 0 wherever unk is 1).
type laneBit4Fn func(m *lmach) (val, unk uint64)

// laneVec4Fn evaluates per lane into paired 64-entry registers of raw
// (canonical) V4 planes.
type laneVec4Fn func(m *lmach) (vv, uu []uint64)

// laneStore4Fn stores paired per-lane planes into a target.
type laneStore4Fn func(m *lmach, vv, uu []uint64)

// lexpr4 is one compiled four-state lane expression: exactly one of
// bit/vec is set.
type lexpr4 struct {
	bit laneBit4Fn
	vec laneVec4Fn
}

// lanePlan4 is the compile-once four-state lane plan, cached on the scalar
// plan (Plan.lanes4) like its two-state twin.
type lanePlan4 struct {
	p     *Plan
	isBit []bool

	initValBits []uint64 // packed broadcast initial values (1-bit slots)
	initUnkBits []uint64
	initVal     []uint64 // per-slot broadcast initial values (wide slots)
	initUnk     []uint64

	nregs  int
	consts []laneConst4

	assigns []laneStmtFn
	combs   []laneStmtFn
	seqs    []laneStmtFn

	svaLane4 map[verilog.Expr]lexpr4
	allSVA   bool
}

// laneConst4 prefills one register pair with a broadcast four-state value.
type laneConst4 struct {
	reg      int
	val, unk uint64
}

func (p *Plan) lanes4() *lanePlan4 {
	p.onceL4.Do(func() { p.pl4 = buildLanePlan4(p) })
	return p.pl4
}

func buildLanePlan4(p *Plan) *lanePlan4 {
	p4 := p.fourState()
	if p4 == nil {
		return nil
	}
	d := p.design
	lp := &lanePlan4{p: p, svaLane4: map[verilog.Expr]lexpr4{}}
	lp.isBit = make([]bool, p.nslots)
	for _, name := range d.Order {
		sig := d.Signals[name]
		lp.isBit[sig.Slot] = sig.Width == 1
	}
	lp.initValBits = make([]uint64, p.nslots)
	lp.initUnkBits = make([]uint64, p.nslots)
	lp.initVal = make([]uint64, p.nslots)
	lp.initUnk = make([]uint64, p.nslots)
	for s := 0; s < p.nslots; s++ {
		lp.initVal[s] = p.initRow[s]
		lp.initUnk[s] = p4.initUnk[s]
		if lp.isBit[s] {
			if p.initRow[s]&1 != 0 {
				lp.initValBits[s] = ^uint64(0)
			}
			if p4.initUnk[s]&1 != 0 {
				lp.initUnkBits[s] = ^uint64(0)
			}
		}
	}
	c := &laneCompiler4{c: planCompiler{d: d, p: p}, c4: planCompiler4{c: planCompiler{d: d, p: p}}, lp: lp}
	ok := func() bool {
		for _, as := range d.Assigns {
			fn, err := c.compileAssign(as.LHS, as.RHS, wAssign)
			if err != nil {
				return false
			}
			lp.assigns = append(lp.assigns, fn)
		}
		for _, al := range d.CombAlways {
			body, err := c.compileStmt(al.Body, false)
			if err != nil {
				return false
			}
			lp.combs = append(lp.combs, body)
		}
		for _, al := range d.SeqAlways {
			body, err := c.compileStmt(al.Body, true)
			if err != nil {
				return false
			}
			lp.seqs = append(lp.seqs, body)
		}
		return true
	}()
	if !ok {
		return nil
	}
	lp.allSVA = true
	compileSVA := func(e verilog.Expr) {
		if e == nil {
			return
		}
		if le, err := c.expr(e); err == nil {
			lp.svaLane4[e] = le
		} else {
			lp.allSVA = false
		}
	}
	for i := range d.Asserts {
		a := &d.Asserts[i]
		compileSVA(a.DisableIff)
		if a.Seq != nil {
			for _, t := range a.Seq.Antecedent {
				compileSVA(t.Expr)
			}
			for _, t := range a.Seq.Consequent {
				compileSVA(t.Expr)
			}
		}
	}
	return lp
}

// ---------------------------------------------------------------------------
// Four-state lane machine
// ---------------------------------------------------------------------------

func newLmach4(lp *lanePlan4) *lmach {
	p := lp.p
	n := p.nslots
	m := &lmach{
		lp4:      lp,
		bits:     make([]uint64, n),
		ubits:    make([]uint64, n),
		wide:     make([][]uint64, n),
		uwide:    make([][]uint64, n),
		ovlBits:  make([]uint64, n),
		ovlUBits: make([]uint64, n),
		ovlWide:  make([][]uint64, n),
		ovlUWide: make([][]uint64, n),
		ovlGen:   make([]uint32, n),
		gen:      1,
		nbaBits:  make([]uint64, n),
		nbaUBits: make([]uint64, n),
		nbaWide:  make([][]uint64, n),
		nbaUWide: make([][]uint64, n),
		nbaGen:   make([]uint32, n),
		nbaWm:    make([]uint64, n),
		ngen:     1,
		wm:       ^uint64(0),
		regs:     make([][]uint64, lp.nregs),
		uregs:    make([][]uint64, lp.nregs),
	}
	for s := 0; s < n; s++ {
		if lp.isBit[s] {
			m.bits[s] = lp.initValBits[s]
			m.ubits[s] = lp.initUnkBits[s]
			continue
		}
		m.wide[s] = make([]uint64, 64)
		m.uwide[s] = make([]uint64, 64)
		m.ovlWide[s] = make([]uint64, 64)
		m.ovlUWide[s] = make([]uint64, 64)
		m.nbaWide[s] = make([]uint64, 64)
		m.nbaUWide[s] = make([]uint64, 64)
		broadcast(m.wide[s], lp.initVal[s])
		broadcast(m.uwide[s], lp.initUnk[s])
	}
	for i := range m.regs {
		m.regs[i] = make([]uint64, 64)
		m.uregs[i] = make([]uint64, 64)
	}
	for _, kc := range lp.consts {
		broadcast(m.regs[kc.reg], kc.val)
		broadcast(m.uregs[kc.reg], kc.unk)
	}
	return m
}

// traceLmach4 returns a machine for evaluating compiled four-state lane
// expressions over sampled rows.
func traceLmach4(lp *lanePlan4, rows, urows []laneRow) *lmach {
	m := &lmach{
		lp4:    lp,
		ovlGen: make([]uint32, lp.p.nslots),
		gen:    1,
		wm:     ^uint64(0),
		regs:   make([][]uint64, lp.nregs),
		uregs:  make([][]uint64, lp.nregs),
		rows:   rows,
		urows:  urows,
	}
	for i := range m.regs {
		m.regs[i] = make([]uint64, 64)
		m.uregs[i] = make([]uint64, 64)
	}
	for _, kc := range lp.consts {
		broadcast(m.regs[kc.reg], kc.val)
		broadcast(m.uregs[kc.reg], kc.unk)
	}
	return m
}

func (m *lmach) readBit4(slot int32) (uint64, uint64) {
	if m.ovlGen[slot] == m.gen {
		return m.ovlBits[slot], m.ovlUBits[slot]
	}
	return m.bits[slot], m.ubits[slot]
}

func (m *lmach) readVec4(slot int32) ([]uint64, []uint64) {
	if m.ovlGen[slot] == m.gen {
		return m.ovlWide[slot], m.ovlUWide[slot]
	}
	return m.wide[slot], m.uwide[slot]
}

func (m *lmach) writeOvlBit4(slot int32, v, u uint64) {
	if m.ovlGen[slot] != m.gen {
		m.ovlGen[slot] = m.gen
		m.ovlBits[slot] = m.bits[slot]
		m.ovlUBits[slot] = m.ubits[slot]
		m.touched = append(m.touched, slot)
	}
	m.ovlBits[slot] = (m.ovlBits[slot] &^ m.wm) | (v & m.wm)
	m.ovlUBits[slot] = (m.ovlUBits[slot] &^ m.wm) | (u & m.wm)
}

func (m *lmach) writeOvlVec4(slot int32, vv, uu []uint64) {
	if m.ovlGen[slot] != m.gen {
		m.ovlGen[slot] = m.gen
		copy(m.ovlWide[slot], m.wide[slot])
		copy(m.ovlUWide[slot], m.uwide[slot])
		m.touched = append(m.touched, slot)
	}
	dv, du := m.ovlWide[slot], m.ovlUWide[slot]
	for l := 0; l < 64; l++ {
		if m.wm>>uint(l)&1 == 1 {
			dv[l] = vv[l]
			du[l] = uu[l]
		}
	}
}

func (m *lmach) writeNBABit4(slot int32, v, u uint64) {
	if m.nbaGen[slot] != m.ngen {
		m.nbaGen[slot] = m.ngen
		m.nbaBits[slot] = m.bits[slot]
		m.nbaUBits[slot] = m.ubits[slot]
		m.nbaWm[slot] = 0
		m.nbaList = append(m.nbaList, slot)
	}
	m.nbaBits[slot] = (m.nbaBits[slot] &^ m.wm) | (v & m.wm)
	m.nbaUBits[slot] = (m.nbaUBits[slot] &^ m.wm) | (u & m.wm)
	m.nbaWm[slot] |= m.wm
}

func (m *lmach) writeNBAVec4(slot int32, vv, uu []uint64) {
	if m.nbaGen[slot] != m.ngen {
		m.nbaGen[slot] = m.ngen
		copy(m.nbaWide[slot], m.wide[slot])
		copy(m.nbaUWide[slot], m.uwide[slot])
		m.nbaWm[slot] = 0
		m.nbaList = append(m.nbaList, slot)
	}
	dv, du := m.nbaWide[slot], m.nbaUWide[slot]
	for l := 0; l < 64; l++ {
		if m.wm>>uint(l)&1 == 1 {
			dv[l] = vv[l]
			du[l] = uu[l]
		}
	}
	m.nbaWm[slot] |= m.wm
}

// settleLanes4 mirrors mach.settle4 over lane state.
func (m *lmach) settleLanes4() error {
	lp := m.lp4
	for iter := 0; iter < maxCombIterations; iter++ {
		m.changed = false
		m.gen++
		for _, fn := range lp.assigns {
			fn(m)
			if m.err != nil {
				return m.err
			}
		}
		for _, body := range lp.combs {
			m.gen++
			m.touched = m.touched[:0]
			body(m)
			if m.err != nil {
				return m.err
			}
			for _, slot := range m.touched {
				if lp.isBit[slot] {
					v, u := m.ovlBits[slot], m.ovlUBits[slot]
					if m.bits[slot] != v || m.ubits[slot] != u {
						m.bits[slot] = v
						m.ubits[slot] = u
						m.changed = true
					}
					continue
				}
				sv, su := m.ovlWide[slot], m.ovlUWide[slot]
				dv, du := m.wide[slot], m.uwide[slot]
				for l := 0; l < 64; l++ {
					if dv[l] != sv[l] || du[l] != su[l] {
						dv[l] = sv[l]
						du[l] = su[l]
						m.changed = true
					}
				}
			}
		}
		if m.err != nil {
			return m.err
		}
		if !m.changed {
			return nil
		}
	}
	return fmt.Errorf("sim: combinational logic did not settle (cycle?)")
}

// edgeLanes4 mirrors mach.edge4 over lane state, with edgeLanes' per-domain
// fired lane masks (nil for single-domain batches).
func (m *lmach) edgeLanes4(fired []uint64) error {
	m.ngen++
	m.nbaList = m.nbaList[:0]
	dom := m.lp4.p.seqDomain
	for i, body := range m.lp4.seqs {
		if fired != nil {
			w := fired[dom[i]]
			if w == 0 {
				continue
			}
			m.wm = w
		}
		m.gen++
		m.touched = m.touched[:0]
		body(m)
		if m.err != nil {
			return m.err
		}
	}
	m.wm = ^uint64(0)
	for _, slot := range m.nbaList {
		if m.lp4.isBit[slot] {
			m.bits[slot] = m.nbaBits[slot]
			m.ubits[slot] = m.nbaUBits[slot]
			continue
		}
		copy(m.wide[slot], m.nbaWide[slot])
		copy(m.uwide[slot], m.nbaUWide[slot])
	}
	return m.settleLanes4()
}

// evalAtBit4 evaluates a packed expression against an earlier sampled row.
func (m *lmach) evalAtBit4(fn laneBit4Fn, idx int) (uint64, uint64) {
	sb, sub, sw, suw, si := m.bits, m.ubits, m.wide, m.uwide, m.idx
	m.bits, m.ubits = m.rows[idx].bits, m.urows[idx].bits
	m.wide, m.uwide, m.idx = m.rows[idx].wide, m.urows[idx].wide, idx
	v, u := fn(m)
	m.bits, m.ubits, m.wide, m.uwide, m.idx = sb, sub, sw, suw, si
	return v, u
}

// evalAtVec4 evaluates a per-lane expression against an earlier sampled row.
func (m *lmach) evalAtVec4(fn laneVec4Fn, idx int) ([]uint64, []uint64) {
	sb, sub, sw, suw, si := m.bits, m.ubits, m.wide, m.uwide, m.idx
	m.bits, m.ubits = m.rows[idx].bits, m.urows[idx].bits
	m.wide, m.uwide, m.idx = m.rows[idx].wide, m.urows[idx].wide, idx
	v, u := fn(m)
	m.bits, m.ubits, m.wide, m.uwide, m.idx = sb, sub, sw, suw, si
	return v, u
}

// ---------------------------------------------------------------------------
// Run / trace entry points
// ---------------------------------------------------------------------------

// runLanes4 is RunLanes' four-state branch.
func runLanes4(ctx context.Context, d *compile.Design, ls *LaneStimulus) (*LaneTrace, error) {
	done := ctx.Done()
	p := PlanOf(d)
	if p == nil {
		return nil, fmt.Errorf("sim: design has no execution plan (lane mode unavailable)")
	}
	lp := p.lanes4()
	if lp == nil {
		return nil, fmt.Errorf("sim: design has no four-state lane plan (lane mode unavailable)")
	}
	slots, err := laneInputSlots(d, ls.Inputs)
	if err != nil {
		return nil, err
	}
	m := newLmach4(lp)
	if err := m.settleLanes4(); err != nil {
		return nil, err
	}
	lc := laneClocksOf(d)
	lt := &LaneTrace{Design: d, plan: p, lp4: lp, n: ls.N,
		rows:  make([]laneRow, 0, ls.Depth),
		urows: make([]laneRow, 0, ls.Depth)}
	zero := make([]uint64, 64)
	for c := 0; c < ls.Depth; c++ {
		if stopped(done) {
			return nil, ctx.Err()
		}
		if lc != nil {
			lc.capture(m.bits, m.ubits)
		}
		for i, slot := range slots {
			if lp.isBit[slot] {
				m.bits[slot] = replicateLanes(ls.Bits[c][i], ls.N)
				m.ubits[slot] = 0
				continue
			}
			dst := m.wide[slot]
			copy(dst, ls.Wide[c][i])
			for l := ls.N; l < 64; l++ {
				dst[l] = dst[ls.N-1]
			}
			copy(m.uwide[slot], zero)
		}
		if err := m.settleLanes4(); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", c, err)
		}
		lt.rows = append(lt.rows, snapshotLaneRow(m.bits, m.wide))
		lt.urows = append(lt.urows, snapshotLaneRow(m.ubits, m.uwide))
		var fired []uint64
		if lc != nil {
			fired = lc.fired(m.bits, m.ubits)
			lt.fired = append(lt.fired, append([]uint64(nil), fired...))
		}
		if err := m.edgeLanes4(fired); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", c, err)
		}
	}
	return lt, nil
}

// compileLaneBool4 is CompileLaneBool's four-state branch: trueMask selects
// lanes whose value is a known nonzero, xMask lanes that sampled x.
func (t *LaneTrace) compileLaneBool4(e verilog.Expr) CompiledLaneBool {
	le, ok := t.lp4.svaLane4[e]
	if !ok {
		return nil
	}
	if t.em == nil {
		t.em = traceLmach4(t.lp4, t.rows, t.urows)
	}
	m := t.em
	frame := func(cycle int) {
		m.bits, m.ubits = t.rows[cycle].bits, t.urows[cycle].bits
		m.wide, m.uwide = t.rows[cycle].wide, t.urows[cycle].wide
		m.idx, m.err = cycle, nil
	}
	if le.bit != nil {
		fn := le.bit
		return func(cycle int) (uint64, uint64, error) {
			frame(cycle)
			v, u := fn(m)
			return v, u &^ v, m.err
		}
	}
	fn := le.vec
	return func(cycle int) (uint64, uint64, error) {
		frame(cycle)
		vv, uu := fn(m)
		var tw, xw uint64
		for l := 0; l < 64; l++ {
			if vv[l] != 0 {
				tw |= 1 << uint(l)
			} else if uu[l] != 0 {
				xw |= 1 << uint(l)
			}
		}
		return tw, xw, m.err
	}
}

// ---------------------------------------------------------------------------
// Statement compilation
// ---------------------------------------------------------------------------

// laneCompiler4 lowers AST nodes into four-state lane closures, sharing the
// scalar compilers' constant folding and width analysis.
type laneCompiler4 struct {
	c  planCompiler
	c4 planCompiler4
	lp *lanePlan4
}

func (c *laneCompiler4) newReg() int {
	r := c.lp.nregs
	c.lp.nregs++
	return r
}

func (c *laneCompiler4) constReg(val, unk uint64) int {
	r := c.newReg()
	c.lp.consts = append(c.lp.consts, laneConst4{reg: r, val: val, unk: unk})
	return r
}

// asVec adapts any four-state lane expression to paired register form.
func (c *laneCompiler4) asVec(e lexpr4) laneVec4Fn {
	if e.vec != nil {
		return e.vec
	}
	bf := e.bit
	reg := c.newReg()
	return func(m *lmach) ([]uint64, []uint64) {
		v, u := bf(m)
		ov, ou := m.regs[reg], m.uregs[reg]
		for l := 0; l < 64; l++ {
			ov[l] = (v >> uint(l)) & 1
			ou[l] = (u >> uint(l)) & 1
		}
		return ov, ou
	}
}

// bool3 compiles three-valued truth masks: tw = lanes with a known nonzero
// value, xw = lanes whose truth is undetermined; false lanes are the rest.
func (c *laneCompiler4) bool3(e lexpr4) func(m *lmach) (tw, xw uint64) {
	if e.bit != nil {
		bf := e.bit
		// Canonical packed values: val bit set => true; else unk bit => x.
		return func(m *lmach) (uint64, uint64) {
			v, u := bf(m)
			return v, u &^ v
		}
	}
	vf := e.vec
	return func(m *lmach) (uint64, uint64) {
		vv, uu := vf(m)
		var tw, xw uint64
		for l := 0; l < 64; l++ {
			if vv[l] != 0 {
				tw |= 1 << uint(l)
			} else if uu[l] != 0 {
				xw |= 1 << uint(l)
			}
		}
		return tw, xw
	}
}

// lsb4 packs the per-lane least-significant bit pair.
func (c *laneCompiler4) lsb4(e lexpr4) laneBit4Fn {
	if e.bit != nil {
		return e.bit
	}
	vf := e.vec
	return func(m *lmach) (uint64, uint64) {
		vv, uu := vf(m)
		var v, u uint64
		for l := 0; l < 64; l++ {
			v |= (vv[l] & 1) << uint(l)
			u |= (uu[l] & 1) << uint(l)
		}
		return v, u
	}
}

func (c *laneCompiler4) compileStmt(s verilog.Stmt, seq bool) (laneStmtFn, error) {
	switch x := s.(type) {
	case nil:
		return func(*lmach) {}, nil
	case *verilog.Block:
		fns := make([]laneStmtFn, 0, len(x.Stmts))
		for _, sub := range x.Stmts {
			fn, err := c.compileStmt(sub, seq)
			if err != nil {
				return nil, err
			}
			fns = append(fns, fn)
		}
		return func(m *lmach) {
			for _, fn := range fns {
				fn(m)
				if m.err != nil {
					return
				}
			}
		}, nil
	case *verilog.Blocking:
		mode := wComb
		if seq {
			mode = wSeqBlocking
		}
		return c.compileAssign(x.LHS, x.RHS, mode)
	case *verilog.NonBlocking:
		mode := wComb
		if seq {
			mode = wSeqNBA
		}
		return c.compileAssign(x.LHS, x.RHS, mode)
	case *verilog.If:
		ce, err := c.expr(x.Cond)
		if err != nil {
			return nil, err
		}
		cf := c.bool3(ce)
		then, err := c.compileStmt(x.Then, seq)
		if err != nil {
			return nil, err
		}
		var els laneStmtFn
		if x.Else != nil {
			els, err = c.compileStmt(x.Else, seq)
			if err != nil {
				return nil, err
			}
		}
		return func(m *lmach) {
			// An x condition takes the else branch, like the scalar engine
			// (IEEE 1364 §9.4: x is not true).
			tw, _ := cf(m)
			if m.err != nil {
				return
			}
			save := m.wm
			if w := save & tw; w != 0 {
				m.wm = w
				then(m)
				if m.err != nil {
					m.wm = save
					return
				}
			}
			if els != nil {
				if w := save &^ tw; w != 0 {
					m.wm = w
					els(m)
				}
			}
			m.wm = save
		}, nil
	case *verilog.Case:
		se, err := c.expr(x.Subject)
		if err != nil {
			return nil, err
		}
		sf := c.asVec(se)
		subjReg := c.newReg()
		type laneArm4 struct {
			labels []laneVec4Fn
			body   laneStmtFn
		}
		arms := make([]laneArm4, 0, len(x.Items))
		var deflt laneStmtFn
		for _, item := range x.Items {
			body, err := c.compileStmt(item.Body, seq)
			if err != nil {
				return nil, err
			}
			if item.Exprs == nil {
				deflt = body
				continue
			}
			labels := make([]laneVec4Fn, 0, len(item.Exprs))
			for _, le := range item.Exprs {
				lf, err := c.expr(le)
				if err != nil {
					return nil, err
				}
				labels = append(labels, c.asVec(lf))
			}
			arms = append(arms, laneArm4{labels: labels, body: body})
		}
		return func(m *lmach) {
			sv, su := sf(m)
			if m.err != nil {
				return
			}
			subjV, subjU := m.regs[subjReg], m.uregs[subjReg]
			copy(subjV, sv)
			copy(subjU, su)
			save := m.wm
			remaining := save
			for i := range arms {
				if remaining == 0 {
					break
				}
				for _, lf := range arms[i].labels {
					if remaining == 0 {
						break
					}
					lv, lu := lf(m)
					if m.err != nil {
						m.wm = save
						return
					}
					// Labels match by case equality over both planes.
					var mw uint64
					for l := 0; l < 64; l++ {
						if subjV[l] == lv[l] && subjU[l] == lu[l] {
							mw |= 1 << uint(l)
						}
					}
					if aw := remaining & mw; aw != 0 {
						remaining &^= aw
						m.wm = aw
						arms[i].body(m)
						if m.err != nil {
							m.wm = save
							return
						}
					}
				}
			}
			if deflt != nil && remaining != 0 {
				m.wm = remaining
				deflt(m)
			}
			m.wm = save
		}, nil
	}
	return nil, errUnplannable{fmt.Sprintf("statement %T (lanes, four-state)", s)}
}

func (c *laneCompiler4) compileAssign(lhs, rhs verilog.Expr, mode writeMode) (laneStmtFn, error) {
	re, err := c.expr(rhs)
	if err != nil {
		return nil, err
	}
	// Fast path: packed RHS stored whole into a single-bit signal.
	if id, ok := lhs.(*verilog.Ident); ok && re.bit != nil {
		if sig := c.c.d.Signals[id.Name]; sig != nil && sig.Width == 1 {
			slot := int32(sig.Slot)
			bf := re.bit
			switch mode {
			case wAssign:
				return func(m *lmach) {
					v, u := bf(m)
					nv := (m.bits[slot] &^ m.wm) | (v & m.wm)
					nu := (m.ubits[slot] &^ m.wm) | (u & m.wm)
					if nv != m.bits[slot] || nu != m.ubits[slot] {
						m.bits[slot] = nv
						m.ubits[slot] = nu
						m.changed = true
					}
				}, nil
			case wComb:
				return func(m *lmach) { v, u := bf(m); m.writeOvlBit4(slot, v, u) }, nil
			case wSeqBlocking:
				return func(m *lmach) {
					v, u := bf(m)
					m.writeOvlBit4(slot, v, u)
					m.writeNBABit4(slot, v, u)
				}, nil
			default: // wSeqNBA
				return func(m *lmach) { v, u := bf(m); m.writeNBABit4(slot, v, u) }, nil
			}
		}
	}
	vf := c.asVec(re)
	store, err := c.store(lhs, mode)
	if err != nil {
		return nil, err
	}
	return func(m *lmach) {
		vv, uu := vf(m)
		store(m, vv, uu)
	}, nil
}

func (c *laneCompiler4) store(lhs verilog.Expr, mode writeMode) (laneStore4Fn, error) {
	switch x := lhs.(type) {
	case *verilog.Ident:
		sig := c.c.d.Signals[x.Name]
		if sig == nil {
			return nil, errUnplannable{"assignment to unknown signal " + x.Name}
		}
		slot := int32(sig.Slot)
		mask := sig.Mask()
		if sig.Width == 1 {
			// maskV(1).norm() per lane, packed: unk wins over val.
			pack := func(vv, uu []uint64) (uint64, uint64) {
				var v, u uint64
				for l := 0; l < 64; l++ {
					ub := uu[l] & 1
					u |= ub << uint(l)
					v |= (vv[l] & 1 &^ ub) << uint(l)
				}
				return v, u
			}
			switch mode {
			case wAssign:
				return func(m *lmach, vv, uu []uint64) {
					v, u := pack(vv, uu)
					nv := (m.bits[slot] &^ m.wm) | (v & m.wm)
					nu := (m.ubits[slot] &^ m.wm) | (u & m.wm)
					if nv != m.bits[slot] || nu != m.ubits[slot] {
						m.bits[slot] = nv
						m.ubits[slot] = nu
						m.changed = true
					}
				}, nil
			case wComb:
				return func(m *lmach, vv, uu []uint64) {
					v, u := pack(vv, uu)
					m.writeOvlBit4(slot, v, u)
				}, nil
			case wSeqBlocking:
				return func(m *lmach, vv, uu []uint64) {
					v, u := pack(vv, uu)
					m.writeOvlBit4(slot, v, u)
					m.writeNBABit4(slot, v, u)
				}, nil
			default: // wSeqNBA
				return func(m *lmach, vv, uu []uint64) {
					v, u := pack(vv, uu)
					m.writeNBABit4(slot, v, u)
				}, nil
			}
		}
		norm := func(m *lmach, vv, uu []uint64, reg int) ([]uint64, []uint64) {
			mv, mu := m.regs[reg], m.uregs[reg]
			for l := 0; l < 64; l++ {
				mu[l] = uu[l] & mask
				mv[l] = vv[l] & mask &^ mu[l]
			}
			return mv, mu
		}
		switch mode {
		case wAssign:
			return func(m *lmach, vv, uu []uint64) {
				dv, du := m.wide[slot], m.uwide[slot]
				for l := 0; l < 64; l++ {
					if m.wm>>uint(l)&1 == 1 {
						nu := uu[l] & mask
						nv := vv[l] & mask &^ nu
						if dv[l] != nv || du[l] != nu {
							dv[l] = nv
							du[l] = nu
							m.changed = true
						}
					}
				}
			}, nil
		case wComb:
			reg := c.newReg()
			return func(m *lmach, vv, uu []uint64) {
				mv, mu := norm(m, vv, uu, reg)
				m.writeOvlVec4(slot, mv, mu)
			}, nil
		case wSeqBlocking:
			reg := c.newReg()
			return func(m *lmach, vv, uu []uint64) {
				mv, mu := norm(m, vv, uu, reg)
				m.writeOvlVec4(slot, mv, mu)
				m.writeNBAVec4(slot, mv, mu)
			}, nil
		default: // wSeqNBA
			reg := c.newReg()
			return func(m *lmach, vv, uu []uint64) {
				mv, mu := norm(m, vv, uu, reg)
				m.writeNBAVec4(slot, mv, mu)
			}, nil
		}
	case *verilog.Index:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return nil, errUnplannable{"unsupported assignment target"}
		}
		sig := c.c.d.Signals[id.Name]
		if sig == nil {
			return nil, errUnplannable{"assignment to unknown signal " + id.Name}
		}
		ie, err := c.expr(x.Idx)
		if err != nil {
			return nil, err
		}
		idxFn := c.asVec(ie)
		base := c.rmwBase(int32(sig.Slot), mode)
		inner, err := c.store(id, mode)
		if err != nil {
			return nil, err
		}
		reg := c.newReg()
		return func(m *lmach, vv, uu []uint64) {
			iv, iu := idxFn(m)
			if m.err != nil {
				return
			}
			bv, bu := base(m)
			ov, ou := m.regs[reg], m.uregs[reg]
			// Lanes with an unknown index skip the write entirely (the
			// scalar engine's no-effect rule), via the predication mask.
			var knownW uint64
			for l := 0; l < 64; l++ {
				if iu[l] != 0 {
					continue
				}
				knownW |= 1 << uint(l)
				sh := iv[l] & 63
				bit := uint64(1) << sh
				ov[l] = (bv[l] &^ bit) | ((vv[l] & 1) << sh)
				ou[l] = (bu[l] &^ bit) | ((uu[l] & 1) << sh)
			}
			save := m.wm
			if w := save & knownW; w != 0 {
				m.wm = w
				inner(m, ov, ou)
			}
			m.wm = save
		}, nil
	case *verilog.Slice:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return nil, errUnplannable{"unsupported assignment target"}
		}
		sig := c.c.d.Signals[id.Name]
		if sig == nil {
			return nil, errUnplannable{"assignment to unknown signal " + id.Name}
		}
		hi, ok1 := c.c4.constEval4(x.Hi)
		lo, ok2 := c.c4.constEval4(x.Lo)
		if !ok1 || !ok2 {
			return nil, errUnplannable{"dynamic slice bounds in assignment target"}
		}
		if lo > hi {
			return nil, errUnplannable{"invalid slice target"}
		}
		base := c.rmwBase(int32(sig.Slot), mode)
		inner, err := c.store(id, mode)
		if err != nil {
			return nil, err
		}
		sm := maskFor(int(hi-lo)+1) << lo
		shift := uint(lo)
		reg := c.newReg()
		return func(m *lmach, vv, uu []uint64) {
			bv, bu := base(m)
			ov, ou := m.regs[reg], m.uregs[reg]
			for l := 0; l < 64; l++ {
				ov[l] = (bv[l] &^ sm) | ((vv[l] << shift) & sm)
				ou[l] = (bu[l] &^ sm) | ((uu[l] << shift) & sm)
			}
			inner(m, ov, ou)
		}, nil
	case *verilog.Concat:
		total := 0
		widths := make([]int, len(x.Elems))
		for i, el := range x.Elems {
			w, ok := c.c.staticWidth(el)
			if !ok {
				return nil, errUnplannable{"dynamic width in concat assignment target"}
			}
			widths[i] = w
			total += w
		}
		stores := make([]laneStore4Fn, len(x.Elems))
		shifts := make([]uint, len(x.Elems))
		elMasks := make([]uint64, len(x.Elems))
		regs := make([]int, len(x.Elems))
		shift := total
		for i, el := range x.Elems {
			shift -= widths[i]
			st, err := c.store(el, mode)
			if err != nil {
				return nil, err
			}
			stores[i] = st
			shifts[i] = uint(shift)
			elMasks[i] = maskFor(widths[i])
			regs[i] = c.newReg()
		}
		return func(m *lmach, vv, uu []uint64) {
			for i, st := range stores {
				ov, ou := m.regs[regs[i]], m.uregs[regs[i]]
				for l := 0; l < 64; l++ {
					ov[l] = (vv[l] >> shifts[i]) & elMasks[i]
					ou[l] = (uu[l] >> shifts[i]) & elMasks[i]
				}
				st(m, ov, ou)
				if m.err != nil {
					return
				}
			}
		}, nil
	}
	return nil, errUnplannable{fmt.Sprintf("assignment target %T (lanes, four-state)", lhs)}
}

// rmwBase returns the per-lane paired base planes for read-modify-write
// targets, mirroring planCompiler4.rmwBase4.
func (c *laneCompiler4) rmwBase(slot int32, mode writeMode) func(m *lmach) ([]uint64, []uint64) {
	isBit := c.lp.isBit[slot]
	expand := func(reg int, readW func(m *lmach) (uint64, uint64)) func(m *lmach) ([]uint64, []uint64) {
		return func(m *lmach) ([]uint64, []uint64) {
			v, u := readW(m)
			ov, ou := m.regs[reg], m.uregs[reg]
			for l := 0; l < 64; l++ {
				ov[l] = (v >> uint(l)) & 1
				ou[l] = (u >> uint(l)) & 1
			}
			return ov, ou
		}
	}
	switch mode {
	case wAssign:
		if isBit {
			return expand(c.newReg(), func(m *lmach) (uint64, uint64) { return m.bits[slot], m.ubits[slot] })
		}
		return func(m *lmach) ([]uint64, []uint64) { return m.wide[slot], m.uwide[slot] }
	case wSeqNBA:
		if isBit {
			return expand(c.newReg(), func(m *lmach) (uint64, uint64) {
				v, u := m.readBit4(slot)
				if m.nbaGen[slot] == m.ngen {
					wm := m.nbaWm[slot]
					v = (m.nbaBits[slot] & wm) | (v &^ wm)
					u = (m.nbaUBits[slot] & wm) | (u &^ wm)
				}
				return v, u
			})
		}
		reg := c.newReg()
		return func(m *lmach) ([]uint64, []uint64) {
			rv, ru := m.readVec4(slot)
			if m.nbaGen[slot] != m.ngen {
				return rv, ru
			}
			nv, nu, wmBits := m.nbaWide[slot], m.nbaUWide[slot], m.nbaWm[slot]
			ov, ou := m.regs[reg], m.uregs[reg]
			for l := 0; l < 64; l++ {
				if wmBits>>uint(l)&1 == 1 {
					ov[l] = nv[l]
					ou[l] = nu[l]
				} else {
					ov[l] = rv[l]
					ou[l] = ru[l]
				}
			}
			return ov, ou
		}
	default: // wComb, wSeqBlocking
		if isBit {
			return expand(c.newReg(), func(m *lmach) (uint64, uint64) { return m.readBit4(slot) })
		}
		return func(m *lmach) ([]uint64, []uint64) { return m.readVec4(slot) }
	}
}

// ---------------------------------------------------------------------------
// Expression compilation
// ---------------------------------------------------------------------------

func (c *laneCompiler4) expr(e verilog.Expr) (lexpr4, error) {
	switch x := e.(type) {
	case *verilog.Number:
		v := V4{Val: x.Value, Unk: x.Unknown()}.norm()
		return c.constExpr(v), nil
	case *verilog.Ident:
		if sig := c.c.d.Signals[x.Name]; sig != nil {
			slot := int32(sig.Slot)
			if sig.Width == 1 {
				return lexpr4{bit: func(m *lmach) (uint64, uint64) { return m.readBit4(slot) }}, nil
			}
			return lexpr4{vec: func(m *lmach) ([]uint64, []uint64) { return m.readVec4(slot) }}, nil
		}
		if v, ok := c.c.d.Params[x.Name]; ok {
			return c.constExpr(known(v)), nil
		}
		return lexpr4{}, errUnplannable{"unknown signal " + x.Name}
	case *verilog.Unary:
		return c.unary(x)
	case *verilog.Binary:
		return c.binary(x)
	case *verilog.Ternary:
		ce, err := c.expr(x.Cond)
		if err != nil {
			return lexpr4{}, err
		}
		cf := c.bool3(ce)
		xe, err := c.expr(x.X)
		if err != nil {
			return lexpr4{}, err
		}
		ye, err := c.expr(x.Y)
		if err != nil {
			return lexpr4{}, err
		}
		if xe.bit != nil && ye.bit != nil {
			xf, yf := xe.bit, ye.bit
			return lexpr4{bit: func(m *lmach) (uint64, uint64) {
				ct, cx := cf(m)
				if ct == ^uint64(0) {
					return xf(m)
				}
				if ct|cx == 0 {
					return yf(m)
				}
				xv, xu := xf(m)
				yv, yu := yf(m)
				cfalse := ^(ct | cx)
				// x-selected lanes merge the arms (v4Merge, word-wide).
				mu := xu | yu | (xv ^ yv)
				mv := xv & yv &^ mu
				v := (ct & xv) | (cfalse & yv) | (cx & mv)
				u := (ct & xu) | (cfalse & yu) | (cx & mu)
				return v, u
			}}, nil
		}
		xf, yf := c.asVec(xe), c.asVec(ye)
		reg := c.newReg()
		return lexpr4{vec: func(m *lmach) ([]uint64, []uint64) {
			ct, cx := cf(m)
			if ct == ^uint64(0) {
				return xf(m)
			}
			if ct|cx == 0 {
				return yf(m)
			}
			xv, xu := xf(m)
			yv, yu := yf(m)
			ov, ou := m.regs[reg], m.uregs[reg]
			for l := 0; l < 64; l++ {
				switch {
				case ct>>uint(l)&1 == 1:
					ov[l], ou[l] = xv[l], xu[l]
				case cx>>uint(l)&1 == 0:
					ov[l], ou[l] = yv[l], yu[l]
				default:
					mv := v4Merge(V4{Val: xv[l], Unk: xu[l]}, V4{Val: yv[l], Unk: yu[l]})
					ov[l], ou[l] = mv.Val, mv.Unk
				}
			}
			return ov, ou
		}}, nil
	case *verilog.Index:
		xe, err := c.expr(x.X)
		if err != nil {
			return lexpr4{}, err
		}
		ie, err := c.expr(x.Idx)
		if err != nil {
			return lexpr4{}, err
		}
		xf, idxFn := c.asVec(xe), c.asVec(ie)
		return lexpr4{bit: func(m *lmach) (uint64, uint64) {
			// Base before index, matching the interpreter's order.
			vv, uu := xf(m)
			iv, iu := idxFn(m)
			var v, u uint64
			for l := 0; l < 64; l++ {
				if iu[l] != 0 {
					u |= 1 << uint(l) // unknown index: xBool
					continue
				}
				if idx := iv[l]; idx < 64 {
					v |= ((vv[l] >> idx) & 1) << uint(l)
					u |= ((uu[l] >> idx) & 1) << uint(l)
				}
			}
			return v &^ u, u
		}}, nil
	case *verilog.Slice:
		xe, err := c.expr(x.X)
		if err != nil {
			return lexpr4{}, err
		}
		hi, ok1 := c.c4.constEval4(x.Hi)
		lo, ok2 := c.c4.constEval4(x.Lo)
		if !ok1 || !ok2 {
			return lexpr4{}, errUnplannable{"dynamic slice bounds"}
		}
		if lo > hi || lo >= 64 {
			pos := x.Pos
			hiC, loC := hi, lo
			reg := c.constReg(0, 0)
			return lexpr4{vec: func(m *lmach) ([]uint64, []uint64) {
				m.fail(evalErrf(pos, "invalid slice [%d:%d]", hiC, loC))
				return m.regs[reg], m.uregs[reg]
			}}, nil
		}
		xf := c.asVec(xe)
		shift := uint(lo)
		mask := maskFor(int(hi-lo) + 1)
		if mask == 1 {
			return lexpr4{bit: func(m *lmach) (uint64, uint64) {
				vv, uu := xf(m)
				var v, u uint64
				for l := 0; l < 64; l++ {
					v |= ((vv[l] >> shift) & 1) << uint(l)
					u |= ((uu[l] >> shift) & 1) << uint(l)
				}
				return v, u
			}}, nil
		}
		reg := c.newReg()
		return lexpr4{vec: func(m *lmach) ([]uint64, []uint64) {
			vv, uu := xf(m)
			ov, ou := m.regs[reg], m.uregs[reg]
			for l := 0; l < 64; l++ {
				ov[l] = (vv[l] >> shift) & mask
				ou[l] = (uu[l] >> shift) & mask
			}
			return ov, ou
		}}, nil
	case *verilog.Concat:
		fns := make([]laneVec4Fn, len(x.Elems))
		widths := make([]uint, len(x.Elems))
		elMasks := make([]uint64, len(x.Elems))
		for i, el := range x.Elems {
			w, ok := c.c.staticWidth(el)
			if !ok {
				return lexpr4{}, errUnplannable{"dynamic width in concat"}
			}
			fe, err := c.expr(el)
			if err != nil {
				return lexpr4{}, err
			}
			fns[i] = c.asVec(fe)
			widths[i] = uint(w)
			elMasks[i] = maskFor(w)
		}
		reg := c.newReg()
		return lexpr4{vec: func(m *lmach) ([]uint64, []uint64) {
			ov, ou := m.regs[reg], m.uregs[reg]
			for l := 0; l < 64; l++ {
				ov[l], ou[l] = 0, 0
			}
			for i, fn := range fns {
				vv, uu := fn(m)
				for l := 0; l < 64; l++ {
					ov[l] = (ov[l] << widths[i]) | (vv[l] & elMasks[i])
					ou[l] = (ou[l] << widths[i]) | (uu[l] & elMasks[i])
				}
			}
			return ov, ou
		}}, nil
	case *verilog.Repl:
		n, ok := c.c4.constEval4(x.Count)
		if !ok {
			return lexpr4{}, errUnplannable{"dynamic replication count"}
		}
		w, ok := c.c.staticWidth(x.Elem)
		if !ok {
			return lexpr4{}, errUnplannable{"dynamic width in replication"}
		}
		fe, err := c.expr(x.Elem)
		if err != nil {
			return lexpr4{}, err
		}
		fn := c.asVec(fe)
		mask := maskFor(w)
		uw := uint(w)
		if n > 64 {
			n = 64 // matches the interpreter's i < 64 bound
		}
		reps := int(n)
		reg := c.newReg()
		return lexpr4{vec: func(m *lmach) ([]uint64, []uint64) {
			vv, uu := fn(m)
			ov, ou := m.regs[reg], m.uregs[reg]
			for l := 0; l < 64; l++ {
				ev, eu := vv[l]&mask, uu[l]&mask
				var o, q uint64
				for i := 0; i < reps; i++ {
					o = (o << uw) | ev
					q = (q << uw) | eu
				}
				ov[l], ou[l] = o, q
			}
			return ov, ou
		}}, nil
	case *verilog.Call:
		return c.call(x)
	}
	return lexpr4{}, errUnplannable{fmt.Sprintf("expression %T (lanes, four-state)", e)}
}

func (c *laneCompiler4) constExpr(v V4) lexpr4 {
	if v.Val|v.Unk <= 1 {
		var vw, uw uint64
		if v.Val == 1 {
			vw = ^uint64(0)
		}
		if v.Unk == 1 {
			uw = ^uint64(0)
		}
		return lexpr4{bit: func(*lmach) (uint64, uint64) { return vw, uw }}
	}
	reg := c.constReg(v.Val, v.Unk)
	return lexpr4{vec: func(m *lmach) ([]uint64, []uint64) { return m.regs[reg], m.uregs[reg] }}
}

func (c *laneCompiler4) unary(x *verilog.Unary) (lexpr4, error) {
	xe, err := c.expr(x.X)
	if err != nil {
		return lexpr4{}, err
	}
	w, ok := c.c.staticWidth(x.X)
	if !ok {
		return lexpr4{}, errUnplannable{"dynamic operand width"}
	}
	mask := maskFor(w)
	if xe.bit != nil && mask == 1 {
		bf := xe.bit
		switch x.Op {
		case verilog.UnaryLogicalNot, verilog.UnaryBitNot, verilog.UnaryRedXnor:
			// All equal v4Not on a single bit: known flips, x stays x.
			return lexpr4{bit: func(m *lmach) (uint64, uint64) {
				v, u := bf(m)
				return ^(v | u), u
			}}, nil
		case verilog.UnaryMinus, verilog.UnaryPlus, verilog.UnaryRedAnd,
			verilog.UnaryRedOr, verilog.UnaryRedXor:
			// Identities on a canonical single bit (x stays x, -v&1 == v).
			return lexpr4{bit: bf}, nil
		}
	}
	vf := c.asVec(xe)
	perLane := func(op func(v V4) V4) lexpr4 {
		reg := c.newReg()
		return lexpr4{vec: func(m *lmach) ([]uint64, []uint64) {
			vv, uu := vf(m)
			ov, ou := m.regs[reg], m.uregs[reg]
			for l := 0; l < 64; l++ {
				r := op(V4{Val: vv[l], Unk: uu[l]})
				ov[l], ou[l] = r.Val, r.Unk
			}
			return ov, ou
		}}
	}
	switch x.Op {
	case verilog.UnaryLogicalNot:
		return perLane(func(v V4) V4 { return v4LogNot(v.maskV(mask)) }), nil
	case verilog.UnaryBitNot:
		return perLane(func(v V4) V4 { return v4Not(v, mask) }), nil
	case verilog.UnaryMinus:
		return perLane(func(v V4) V4 {
			v = v.maskV(mask)
			if v.Unk != 0 {
				return V4{Unk: mask}
			}
			return known(-v.Val & mask)
		}), nil
	case verilog.UnaryPlus:
		return perLane(func(v V4) V4 { return v.maskV(mask) }), nil
	case verilog.UnaryRedAnd:
		return perLane(func(v V4) V4 { return v4RedAnd(v, mask) }), nil
	case verilog.UnaryRedOr:
		return perLane(func(v V4) V4 { return v4RedOr(v, mask) }), nil
	case verilog.UnaryRedXor:
		return perLane(func(v V4) V4 { return v4RedXor(v, mask) }), nil
	case verilog.UnaryRedXnor:
		return perLane(func(v V4) V4 { return v4Not(v4RedXor(v, mask), 1) }), nil
	}
	return lexpr4{}, errUnplannable{"unary operator " + x.Op.String()}
}

func (c *laneCompiler4) binary(x *verilog.Binary) (lexpr4, error) {
	ae, err := c.expr(x.X)
	if err != nil {
		return lexpr4{}, err
	}
	be, err := c.expr(x.Y)
	if err != nil {
		return lexpr4{}, err
	}
	bothBit := ae.bit != nil && be.bit != nil
	switch x.Op {
	case verilog.BinLogAnd:
		af, bf := c.bool3(ae), c.bool3(be)
		return lexpr4{bit: func(m *lmach) (uint64, uint64) {
			ta, xa := af(m)
			if ta|xa == 0 {
				return 0, 0 // every lane's left operand is false
			}
			tb, xb := bf(m)
			v := ta & tb
			falseW := ^(ta | xa) | ^(tb | xb)
			return v, ^(v | falseW)
		}}, nil
	case verilog.BinLogOr:
		af, bf := c.bool3(ae), c.bool3(be)
		return lexpr4{bit: func(m *lmach) (uint64, uint64) {
			ta, xa := af(m)
			if ta == ^uint64(0) {
				return ta, 0
			}
			tb, xb := bf(m)
			v := ta | tb
			falseW := ^(ta | xa) & ^(tb | xb)
			return v, ^(v | falseW)
		}}, nil
	case verilog.BinAnd:
		if bothBit {
			af, bf := ae.bit, be.bit
			return lexpr4{bit: func(m *lmach) (uint64, uint64) {
				av, au := af(m)
				bv, bu := bf(m)
				// v4And word-wide: 0 & x = 0 absorption.
				known0 := (^av & ^au) | (^bv & ^bu)
				unk := (au | bu) &^ known0
				return av & bv &^ unk, unk
			}}, nil
		}
		return c.vecBin4(ae, be, v4And), nil
	case verilog.BinOr:
		if bothBit {
			af, bf := ae.bit, be.bit
			return lexpr4{bit: func(m *lmach) (uint64, uint64) {
				av, au := af(m)
				bv, bu := bf(m)
				known1 := av | bv
				return known1, (au | bu) &^ known1
			}}, nil
		}
		return c.vecBin4(ae, be, v4Or), nil
	case verilog.BinXor:
		if bothBit {
			af, bf := ae.bit, be.bit
			return lexpr4{bit: func(m *lmach) (uint64, uint64) {
				av, au := af(m)
				bv, bu := bf(m)
				unk := au | bu
				return (av ^ bv) &^ unk, unk
			}}, nil
		}
		return c.vecBin4(ae, be, v4Xor), nil
	case verilog.BinXnor:
		wx, ok1 := c.c.staticWidth(x.X)
		wy, ok2 := c.c.staticWidth(x.Y)
		if !ok1 || !ok2 {
			return lexpr4{}, errUnplannable{"dynamic operand width"}
		}
		mask := maskFor(max(wx, wy))
		if bothBit && mask == 1 {
			af, bf := ae.bit, be.bit
			return lexpr4{bit: func(m *lmach) (uint64, uint64) {
				av, au := af(m)
				bv, bu := bf(m)
				unk := au | bu
				return ^(av ^ bv) &^ unk, unk
			}}, nil
		}
		return c.vecBin4(ae, be, func(a, b V4) V4 { return v4Not(v4Xor(a, b), mask) }), nil
	case verilog.BinEq:
		if bothBit {
			af, bf := ae.bit, be.bit
			return lexpr4{bit: func(m *lmach) (uint64, uint64) {
				av, au := af(m)
				bv, bu := bf(m)
				unk := au | bu
				return ^(av ^ bv) &^ unk, unk
			}}, nil
		}
		return c.packedCmp4(ae, be, v4Eq), nil
	case verilog.BinNe:
		if bothBit {
			af, bf := ae.bit, be.bit
			return lexpr4{bit: func(m *lmach) (uint64, uint64) {
				av, au := af(m)
				bv, bu := bf(m)
				unk := au | bu
				return (av ^ bv) &^ unk, unk
			}}, nil
		}
		return c.packedCmp4(ae, be, func(a, b V4) V4 { return v4LogNot(v4Eq(a, b)) }), nil
	case verilog.BinCaseEq:
		if bothBit {
			af, bf := ae.bit, be.bit
			return lexpr4{bit: func(m *lmach) (uint64, uint64) {
				av, au := af(m)
				bv, bu := bf(m)
				return ^(av ^ bv) & ^(au ^ bu), 0
			}}, nil
		}
		return c.packedCmp4(ae, be, v4CaseEq), nil
	case verilog.BinCaseNe:
		if bothBit {
			af, bf := ae.bit, be.bit
			return lexpr4{bit: func(m *lmach) (uint64, uint64) {
				av, au := af(m)
				bv, bu := bf(m)
				return (av ^ bv) | (au ^ bu), 0
			}}, nil
		}
		return c.packedCmp4(ae, be, func(a, b V4) V4 { return v4LogNot(v4CaseEq(a, b)) }), nil
	case verilog.BinLt:
		return c.relBin4(ae, be, bothBit, func(av, bv uint64) uint64 { return ^av & bv },
			func(p, q uint64) bool { return p < q }), nil
	case verilog.BinLe:
		return c.relBin4(ae, be, bothBit, func(av, bv uint64) uint64 { return ^av | bv },
			func(p, q uint64) bool { return p <= q }), nil
	case verilog.BinGt:
		return c.relBin4(ae, be, bothBit, func(av, bv uint64) uint64 { return av & ^bv },
			func(p, q uint64) bool { return p > q }), nil
	case verilog.BinGe:
		return c.relBin4(ae, be, bothBit, func(av, bv uint64) uint64 { return av | ^bv },
			func(p, q uint64) bool { return p >= q }), nil
	case verilog.BinAdd:
		return c.vecBin4(ae, be, func(a, b V4) V4 {
			return v4Arith(a, b, func(p, q uint64) uint64 { return p + q })
		}), nil
	case verilog.BinSub:
		return c.vecBin4(ae, be, func(a, b V4) V4 {
			return v4Arith(a, b, func(p, q uint64) uint64 { return p - q })
		}), nil
	case verilog.BinMul:
		return c.vecBin4(ae, be, func(a, b V4) V4 {
			return v4Arith(a, b, func(p, q uint64) uint64 { return p * q })
		}), nil
	case verilog.BinDiv:
		return c.vecBin4(ae, be, v4Div), nil
	case verilog.BinMod:
		return c.vecBin4(ae, be, v4Mod), nil
	case verilog.BinShl:
		return c.vecBin4(ae, be, v4Shl), nil
	case verilog.BinShr:
		return c.vecBin4(ae, be, v4Shr), nil
	case verilog.BinAShr:
		w, ok := c.c.staticWidth(x.X)
		if !ok {
			return lexpr4{}, errUnplannable{"dynamic operand width"}
		}
		return c.vecBin4(ae, be, func(a, b V4) V4 { return v4AShr(a, b, w) }), nil
	}
	return lexpr4{}, errUnplannable{"binary operator " + x.Op.String()}
}

// vecBin4 lowers a binary operator to a per-lane loop over the shared V4
// operator function.
func (c *laneCompiler4) vecBin4(ae, be lexpr4, op func(a, b V4) V4) lexpr4 {
	af, bf := c.asVec(ae), c.asVec(be)
	reg := c.newReg()
	return lexpr4{vec: func(m *lmach) ([]uint64, []uint64) {
		av, au := af(m)
		bv, bu := bf(m)
		ov, ou := m.regs[reg], m.uregs[reg]
		for l := 0; l < 64; l++ {
			r := op(V4{Val: av[l], Unk: au[l]}, V4{Val: bv[l], Unk: bu[l]})
			ov[l], ou[l] = r.Val, r.Unk
		}
		return ov, ou
	}}
}

// packedCmp4 lowers a single-bit-result operator to per-lane evaluation
// packed into a word pair.
func (c *laneCompiler4) packedCmp4(ae, be lexpr4, op func(a, b V4) V4) lexpr4 {
	af, bf := c.asVec(ae), c.asVec(be)
	return lexpr4{bit: func(m *lmach) (uint64, uint64) {
		av, au := af(m)
		bv, bu := bf(m)
		var v, u uint64
		for l := 0; l < 64; l++ {
			r := op(V4{Val: av[l], Unk: au[l]}, V4{Val: bv[l], Unk: bu[l]})
			v |= (r.Val & 1) << uint(l)
			u |= (r.Unk & 1) << uint(l)
		}
		return v, u
	}}
}

// relBin4 lowers a relational operator: a word kernel for single-bit
// operands (x if either is x), a per-lane v4RelArith loop otherwise.
func (c *laneCompiler4) relBin4(ae, be lexpr4, bothBit bool, kernel func(av, bv uint64) uint64, op func(p, q uint64) bool) lexpr4 {
	if bothBit {
		af, bf := ae.bit, be.bit
		return lexpr4{bit: func(m *lmach) (uint64, uint64) {
			av, au := af(m)
			bv, bu := bf(m)
			unk := au | bu
			return kernel(av, bv) &^ unk, unk
		}}
	}
	return c.packedCmp4(ae, be, func(a, b V4) V4 { return v4RelArith(a, b, op) })
}

func (c *laneCompiler4) call(x *verilog.Call) (lexpr4, error) {
	if len(x.Args) == 0 {
		return lexpr4{}, errUnplannable{x.Name + " without arguments"}
	}
	arg := x.Args[0]
	switch x.Name {
	case "$countones", "$onehot", "$onehot0", "$isunknown":
		fe, err := c.expr(arg)
		if err != nil {
			return lexpr4{}, err
		}
		w, ok := c.c.staticWidth(arg)
		if !ok {
			return lexpr4{}, errUnplannable{"dynamic operand width"}
		}
		mask := maskFor(w)
		vf := c.asVec(fe)
		switch x.Name {
		case "$countones":
			reg := c.newReg()
			return lexpr4{vec: func(m *lmach) ([]uint64, []uint64) {
				vv, uu := vf(m)
				ov, ou := m.regs[reg], m.uregs[reg]
				for l := 0; l < 64; l++ {
					if uu[l]&mask != 0 {
						ov[l], ou[l] = 0, ^uint64(0)
						continue
					}
					ov[l], ou[l] = uint64(bits.OnesCount64(vv[l]&mask)), 0
				}
				return ov, ou
			}}, nil
		case "$onehot", "$onehot0":
			limit := 1
			exact := x.Name == "$onehot"
			return lexpr4{bit: func(m *lmach) (uint64, uint64) {
				vv, uu := vf(m)
				var v, u uint64
				for l := 0; l < 64; l++ {
					if uu[l]&mask != 0 {
						u |= 1 << uint(l)
						continue
					}
					n := bits.OnesCount64(vv[l] & mask)
					if (exact && n == limit) || (!exact && n <= limit) {
						v |= 1 << uint(l)
					}
				}
				return v, u
			}}, nil
		default: // $isunknown
			return lexpr4{bit: func(m *lmach) (uint64, uint64) {
				vv, uu := vf(m)
				_ = vv
				var v uint64
				for l := 0; l < 64; l++ {
					if uu[l]&mask != 0 {
						v |= 1 << uint(l)
					}
				}
				return v, 0
			}}, nil
		}
	case "$signed", "$unsigned":
		return c.expr(arg)
	case "$past":
		fe, err := c.expr(arg)
		if err != nil {
			return lexpr4{}, err
		}
		pos := x.Pos
		depth := uint64(1)
		if len(x.Args) > 1 {
			// Only compile-time constant depths lane (the sampled frame swap
			// is whole-machine); others fall back per-expression.
			d, ok := c.c4.constEval4(x.Args[1])
			if !ok {
				return lexpr4{}, errUnplannable{"non-constant $past depth (lanes)"}
			}
			depth = d
		}
		if depth == 0 || depth > maxPastDepth {
			dc := depth
			reg := c.constReg(0, 0)
			return lexpr4{vec: func(m *lmach) ([]uint64, []uint64) {
				m.fail(evalErrf(pos, "$past depth %d out of range [1, %d]", dc, uint64(maxPastDepth)))
				return m.regs[reg], m.uregs[reg]
			}}, nil
		}
		d := int(depth)
		if fe.bit != nil {
			bf := fe.bit
			return lexpr4{bit: func(m *lmach) (uint64, uint64) {
				if m.rows == nil {
					m.fail(evalErrf(pos, "$past outside sampled context"))
					return 0, 0
				}
				j := m.idx - d
				if j < 0 {
					return 0, 0 // before start of time: sampled default (0)
				}
				return m.evalAtBit4(bf, j)
			}}, nil
		}
		vf := fe.vec
		zreg := c.constReg(0, 0)
		return lexpr4{vec: func(m *lmach) ([]uint64, []uint64) {
			if m.rows == nil {
				m.fail(evalErrf(pos, "$past outside sampled context"))
				return m.regs[zreg], m.uregs[zreg]
			}
			j := m.idx - d
			if j < 0 {
				return m.regs[zreg], m.uregs[zreg]
			}
			return m.evalAtVec4(vf, j)
		}}, nil
	case "$rose", "$fell", "$stable", "$changed":
		fe, err := c.expr(arg)
		if err != nil {
			return lexpr4{}, err
		}
		pos := x.Pos
		name := x.Name
		if name == "$rose" || name == "$fell" {
			bf := c.lsb4(fe)
			rose := name == "$rose"
			return lexpr4{bit: func(m *lmach) (uint64, uint64) {
				if m.rows == nil {
					m.fail(evalErrf(pos, "%s outside sampled context", name))
					return 0, 0
				}
				nv, nu := bf(m)
				var bv, bu uint64
				if m.idx > 0 {
					bv, bu = m.evalAtBit4(bf, m.idx-1)
				}
				unk := bu | nu // any x in either sample: xBool (v4Sampled)
				var v uint64
				if rose {
					v = ^bv & nv
				} else {
					v = bv & ^nv
				}
				return v &^ unk, unk
			}}, nil
		}
		stable := name == "$stable"
		if fe.bit != nil {
			bf := fe.bit
			return lexpr4{bit: func(m *lmach) (uint64, uint64) {
				if m.rows == nil {
					m.fail(evalErrf(pos, "%s outside sampled context", name))
					return 0, 0
				}
				nv, nu := bf(m)
				var bv, bu uint64
				if m.idx > 0 {
					bv, bu = m.evalAtBit4(bf, m.idx-1)
				}
				unk := bu | nu
				v := ^(bv ^ nv)
				if !stable {
					v = bv ^ nv
				}
				return v &^ unk, unk
			}}, nil
		}
		vf := fe.vec
		return lexpr4{bit: func(m *lmach) (uint64, uint64) {
			if m.rows == nil {
				m.fail(evalErrf(pos, "%s outside sampled context", name))
				return 0, 0
			}
			nv, nu := vf(m)
			var v, u uint64
			if m.idx > 0 {
				// Copy the now-frame first: the past evaluation reuses the
				// same registers.
				nvc := make([]uint64, 64)
				nuc := make([]uint64, 64)
				copy(nvc, nv)
				copy(nuc, nu)
				bv, bu := m.evalAtVec4(vf, m.idx-1)
				for l := 0; l < 64; l++ {
					if nuc[l]|bu[l] != 0 {
						u |= 1 << uint(l)
						continue
					}
					if (bv[l] == nvc[l]) == stable {
						v |= 1 << uint(l)
					}
				}
				return v, u
			}
			for l := 0; l < 64; l++ {
				if nu[l] != 0 {
					u |= 1 << uint(l)
					continue
				}
				if (nv[l] == 0) == stable {
					v |= 1 << uint(l)
				}
			}
			return v, u
		}}, nil
	}
	return lexpr4{}, errUnplannable{"system function " + x.Name + " (lanes, four-state)"}
}
