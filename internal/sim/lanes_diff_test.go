// Corpus-wide differential pinning of the lane engine: every golden design
// and a sample of its mutants runs through (1) lane mode, (2) the scalar
// compiled plan, and (3) the reference interpreter, in both value domains,
// and all three must agree on traces, SVA verdicts and logs. This is the
// same discipline that pinned the plan to the interpreter in earlier PRs,
// extended to the third engine — it is deliberately in an external test
// package so it can drive internal/sva like a real caller.
package sim_test

import (
	"math/rand"
	"testing"

	"repro/internal/bugs"
	"repro/internal/compile"
	"repro/internal/corpus"
	"repro/internal/sim"
	"repro/internal/sva"
	"repro/internal/verilog"
)

// laneDiffStims builds n dense deterministic stimuli (reset-then-random)
// sharing one input list, plus the equivalent map form for the reference
// interpreter.
func laneDiffStims(d *compile.Design, seed int64, n, depth int) ([]sim.VecStimulus, []sim.Stimulus) {
	rng := rand.New(rand.NewSource(seed))
	inputs := d.Inputs(true)
	reset := d.Reset()
	cols := append([]*compile.Signal(nil), inputs...)
	ri := -1
	if reset.Present {
		if sig := d.Signals[reset.Name]; sig != nil {
			ri = len(cols)
			cols = append(cols, sig)
		}
	}
	vecs := make([]sim.VecStimulus, n)
	maps := make([]sim.Stimulus, n)
	for j := 0; j < n; j++ {
		rows := make([][]uint64, depth)
		mst := make(sim.Stimulus, depth)
		for c := 0; c < depth; c++ {
			row := make([]uint64, len(cols))
			cyc := map[string]uint64{}
			if ri >= 0 {
				active := c < 2
				v := uint64(0)
				if reset.ActiveLow != active {
					v = 1
				}
				row[ri] = v
				cyc[reset.Name] = v
			}
			for i, in := range inputs {
				v := rng.Uint64() & in.Mask()
				row[i] = v
				cyc[in.Name] = v
			}
			rows[c] = row
			mst[c] = cyc
		}
		vecs[j] = sim.VecStimulus{Inputs: cols, Rows: rows}
		maps[j] = mst
	}
	return vecs, maps
}

func sameTrace(t *testing.T, name, legA, legB string, a, b *sim.Trace, order []string) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: %s trace len %d vs %s %d", name, legA, a.Len(), legB, b.Len())
	}
	for c := 0; c < a.Len(); c++ {
		for _, sig := range order {
			ga, _ := a.Value4(c, sig)
			gb, _ := b.Value4(c, sig)
			if ga != gb {
				t.Fatalf("%s: cycle %d signal %s: %s=%+v %s=%+v", name, c, sig, legA, ga, legB, gb)
			}
		}
	}
}

func sameVerdicts(t *testing.T, name string, a, b *sva.Result) {
	t.Helper()
	if len(a.Failures) != len(b.Failures) {
		t.Fatalf("%s: %d failures vs %d", name, len(a.Failures), len(b.Failures))
	}
	for i := range a.Failures {
		p, r := a.Failures[i], b.Failures[i]
		if p.Assert.Name != r.Assert.Name || p.StartCycle != r.StartCycle ||
			p.FailCycle != r.FailCycle || p.Unknown != r.Unknown {
			t.Fatalf("%s: failure %d differs: %+v vs %+v", name, i, p, r)
		}
	}
	if len(a.Attempts) != len(b.Attempts) {
		t.Fatalf("%s: attempt sets differ: %v vs %v", name, a.Attempts, b.Attempts)
	}
	for k, v := range a.Attempts {
		if b.Attempts[k] != v {
			t.Fatalf("%s: attempts[%s]: %d vs %d", name, k, v, b.Attempts[k])
		}
	}
}

// assertLaneDifferential packs a ragged batch of stimuli, runs it through
// lane mode, and pins every lane against the scalar plan and the reference
// interpreter.
func assertLaneDifferential(t *testing.T, name, src string, seed int64, lanes int, mode sim.Mode) bool {
	t.Helper()
	d, diags, err := compile.Compile(src)
	if err != nil || compile.HasErrors(diags) || d == nil {
		return false // uncompilable mutants are out of scope
	}
	dRef, _, _ := compile.Compile(src)
	vecs, maps := laneDiffStims(d, seed, lanes, 20)
	ls, err := sim.PackStimuli(vecs)
	if err != nil {
		t.Fatalf("%s: pack: %v", name, err)
	}
	lt, laneErr := sim.RunLanes(d, ls, mode)

	// Scalar legs. Lane mode may error on a superset of the scalar runs
	// (predication evaluates untaken branches), so a lane error only
	// requires that the fallback path — per-lane scalar runs — works; but
	// a lane success with any scalar error is always a divergence.
	for l := 0; l < lanes; l++ {
		lname := name
		tr, scalarErr := sim.RunVecMode(d, vecs[l], mode)
		ref, refErr := sim.RunReferenceMode(dRef, maps[l], mode)
		if (scalarErr == nil) != (refErr == nil) {
			t.Fatalf("%s: lane %d: plan err=%v, reference err=%v", lname, l, scalarErr, refErr)
		}
		if laneErr != nil {
			continue // fallback contract: scalar legs decide on their own
		}
		if scalarErr != nil {
			t.Fatalf("%s: lane %d: lane batch passed but scalar errs: %v", lname, l, scalarErr)
		}
		sameTrace(t, lname, "reference", "plan", ref, tr, d.Order)
		dm := lt.Demux(l)
		sameTrace(t, lname, "lane", "plan", dm, tr, d.Order)

		resScalar, errS := sva.Check(tr)
		resLane, errL := sva.Check(dm)
		resRef, errR := sva.Check(ref)
		if (errS == nil) != (errL == nil) || (errS == nil) != (errR == nil) {
			t.Fatalf("%s: lane %d: sva errs: plan=%v lane=%v reference=%v", lname, l, errS, errL, errR)
		}
		if errS != nil {
			continue
		}
		sameVerdicts(t, lname, resScalar, resLane)
		sameVerdicts(t, lname, resScalar, resRef)
		logS := sva.FormatLog(d.Module.Name, tr, resScalar.Failures)
		logL := sva.FormatLog(d.Module.Name, dm, resLane.Failures)
		if logS != logL {
			t.Fatalf("%s: lane %d: logs differ:\n--- plan\n%s--- lane\n%s", lname, l, logS, logL)
		}
	}
	if laneErr != nil {
		return false
	}

	// The batched SVA checker must agree with per-lane scalar checking on
	// which lanes failed and which attempted each assertion.
	lres, err := sva.CheckLanes(lt)
	if err != nil {
		return true // not lane-compiled: callers fall back per lane
	}
	var wantFailed uint64
	wantAttempted := map[string]uint64{}
	for l := 0; l < lanes; l++ {
		tr, err := sim.RunVecMode(d, vecs[l], mode)
		if err != nil {
			t.Fatalf("%s: lane %d rerun: %v", name, l, err)
		}
		res, err := sva.Check(tr)
		if err != nil {
			return true
		}
		if res.Failed() {
			wantFailed |= 1 << uint(l)
		}
		for k := range res.Attempts {
			wantAttempted[k] |= 1 << uint(l)
		}
	}
	if lres.Failed != wantFailed {
		t.Fatalf("%s: CheckLanes failed mask %#x, scalar %#x", name, lres.Failed, wantFailed)
	}
	if len(lres.Attempted) != len(wantAttempted) {
		t.Fatalf("%s: CheckLanes attempted %v, scalar %v", name, lres.Attempted, wantAttempted)
	}
	for k, w := range wantAttempted {
		if lres.Attempted[k] != w {
			t.Fatalf("%s: CheckLanes attempted[%s]=%#x, scalar %#x", name, k, lres.Attempted[k], w)
		}
	}
	return true
}

// TestLaneDifferentialCorpus drives every corpus golden design — and a
// sample of single-site mutants of each — through all three engines in both
// value domains. Lane counts cycle through ragged widths so partial final
// words and the lane-replication rule get constant coverage.
func TestLaneDifferentialCorpus(t *testing.T) {
	raggedLanes := []int{64, 1, 7, 33, 64, 13}
	laneRuns, total := 0, 0
	for i, bp := range corpus.Catalog() {
		src := bp.Source()
		for mi, mode := range []sim.Mode{sim.TwoState, sim.FourState} {
			lanes := raggedLanes[(i+mi)%len(raggedLanes)]
			total++
			if assertLaneDifferential(t, bp.Name(), src, int64(1000+i), lanes, mode) {
				laneRuns++
			}
		}
		for j, mu := range bugs.Enumerate(bp.Module, 4) {
			name := bp.Name() + "/" + mu.Label()
			msrc := verilog.Print(mu.Mutant)
			for mi, mode := range []sim.Mode{sim.TwoState, sim.FourState} {
				lanes := raggedLanes[(i+j+mi)%len(raggedLanes)]
				total++
				if assertLaneDifferential(t, name, msrc, int64(7000+100*i+j), lanes, mode) {
					laneRuns++
				}
			}
		}
	}
	// The lane engine must actually cover the corpus, or this test silently
	// degrades into scalar-vs-reference only.
	if laneRuns*2 < total {
		t.Fatalf("lane engine covered only %d/%d corpus runs", laneRuns, total)
	}
	t.Logf("lane engine covered %d/%d corpus runs", laneRuns, total)
}
