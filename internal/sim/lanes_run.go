package sim

import (
	"context"
	"fmt"

	"repro/internal/compile"
	"repro/internal/verilog"
)

// LaneStimulus drives a lane batch: up to 64 independent stimuli over the
// same input list and depth, packed one bit per lane for single-bit inputs
// and one 64-entry vector per cycle for wider ones. Lanes >= N are ignored
// (RunLanes replicates lane N-1 into them so word kernels never see
// garbage).
type LaneStimulus struct {
	Inputs []*compile.Signal
	N      int // active lanes, 1..64
	Depth  int // cycles

	// Bits[c][i] packs input i at cycle c across lanes (bit l = lane l's
	// value), valid when Inputs[i].Width == 1.
	Bits [][]uint64
	// Wide[c][i][l] is lane l's value for input i at cycle c, allocated only
	// for inputs wider than one bit (nil entries otherwise).
	Wide [][][]uint64
}

// PackStimuli packs 1..64 stimuli over identical input lists and depths
// into one lane batch; stimulus j becomes lane j.
func PackStimuli(stims []VecStimulus) (*LaneStimulus, error) {
	if len(stims) == 0 || len(stims) > 64 {
		return nil, fmt.Errorf("sim: lane batch must hold 1..64 stimuli, got %d", len(stims))
	}
	first := stims[0]
	depth := len(first.Rows)
	for j, st := range stims[1:] {
		if len(st.Inputs) != len(first.Inputs) || len(st.Rows) != depth {
			return nil, fmt.Errorf("sim: lane %d stimulus shape differs from lane 0", j+1)
		}
		for i := range st.Inputs {
			if st.Inputs[i].Name != first.Inputs[i].Name {
				return nil, fmt.Errorf("sim: lane %d drives %q where lane 0 drives %q",
					j+1, st.Inputs[i].Name, first.Inputs[i].Name)
			}
		}
	}
	ls := &LaneStimulus{Inputs: first.Inputs, N: len(stims), Depth: depth,
		Bits: make([][]uint64, depth), Wide: make([][][]uint64, depth)}
	for c := 0; c < depth; c++ {
		ls.Bits[c] = make([]uint64, len(first.Inputs))
		ls.Wide[c] = make([][]uint64, len(first.Inputs))
		for i, in := range first.Inputs {
			if in.Width == 1 {
				var w uint64
				for l, st := range stims {
					w |= (st.Rows[c][i] & 1) << uint(l)
				}
				ls.Bits[c][i] = w
				continue
			}
			vv := make([]uint64, 64)
			mask := in.Mask()
			for l, st := range stims {
				vv[l] = st.Rows[c][i] & mask
			}
			ls.Wide[c][i] = vv
		}
	}
	return ls, nil
}

// LaneStimulusAt demuxes lane l back to the concrete scalar stimulus it
// encodes — the replay path for failing lanes.
func (ls *LaneStimulus) LaneStimulusAt(l int) VecStimulus {
	rows := make([][]uint64, ls.Depth)
	for c := range rows {
		row := make([]uint64, len(ls.Inputs))
		for i, in := range ls.Inputs {
			if in.Width == 1 {
				row[i] = (ls.Bits[c][i] >> uint(l)) & 1
			} else {
				row[i] = ls.Wide[c][i][l]
			}
		}
		rows[c] = row
	}
	return VecStimulus{Inputs: ls.Inputs, Rows: rows}
}

// replicateLanes extends bit n-1 of a packed word into lanes n..63, so
// unused lanes always simulate the last real stimulus.
func replicateLanes(w uint64, n int) uint64 {
	if n >= 64 {
		return w
	}
	low := uint64(1)<<uint(n) - 1
	if w>>uint(n-1)&1 == 1 {
		return (w & low) | ^low
	}
	return w & low
}

// LaneTrace is the sampled history of a lane batch: row c holds the
// preponed sample for cycle c across all lanes. Like Trace it is not safe
// for concurrent use while compiled expressions are being evaluated.
type LaneTrace struct {
	Design *compile.Design
	plan   *Plan
	lp     *LanePlan
	lp4    *lanePlan4
	n      int
	rows   []laneRow
	urows  []laneRow // unknown-bit plane, nil for two-state batches
	em     *lmach    // lazy shared machine for compiled lane evaluation

	// fired[c][k] is the lane mask of domain k's ticks at the edge following
	// row c; nil for single-domain batches (every row ticks the one clock in
	// every lane).
	fired [][]uint64
}

// Len returns the number of sampled cycles.
func (t *LaneTrace) Len() int { return len(t.rows) }

// Lanes returns the number of active lanes.
func (t *LaneTrace) Lanes() int { return t.n }

// Mode returns the value domain the batch ran in.
func (t *LaneTrace) Mode() Mode {
	if t.urows != nil {
		return FourState
	}
	return TwoState
}

// ActiveMask returns the word mask selecting the active lanes; callers must
// discard result bits outside it (inactive lanes replicate lane n-1).
func (t *LaneTrace) ActiveMask() uint64 {
	if t.n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(t.n) - 1
}

// Demux extracts lane l as an ordinary scalar trace, sharing the design's
// plan so the SVA checker evaluates it through the compiled path.
func (t *LaneTrace) Demux(l int) *Trace {
	p := t.plan
	tr := &Trace{Design: t.Design, plan: p, rows: make([][]uint64, len(t.rows))}
	demuxRow := func(lr laneRow) []uint64 {
		row := make([]uint64, p.nslots)
		for s := 0; s < p.nslots; s++ {
			if lr.wide[s] != nil {
				row[s] = lr.wide[s][l]
			} else {
				row[s] = (lr.bits[s] >> uint(l)) & 1
			}
		}
		return row
	}
	for c, lr := range t.rows {
		tr.rows[c] = demuxRow(lr)
	}
	if t.urows != nil {
		tr.unks = make([][]uint64, len(t.urows))
		for c, lr := range t.urows {
			tr.unks[c] = demuxRow(lr)
		}
	}
	if t.fired != nil {
		tr.fired = make([]uint64, len(t.fired))
		for c, fm := range t.fired {
			var f uint64
			for k, w := range fm {
				if w>>uint(l)&1 != 0 {
					f |= 1 << uint(k)
				}
			}
			tr.fired[c] = f
		}
	}
	return tr
}

// CompiledLaneBool evaluates a boolean expression across all lanes at one
// sampled cycle: bit l of trueMask is set when lane l's value is true
// (nonzero and known), bit l of xMask when it sampled x (four-state
// batches only).
type CompiledLaneBool func(cycle int) (trueMask, xMask uint64, err error)

// CompileLaneBool returns a lane-batched evaluator for e over this trace,
// or nil when the lane compiler could not lower e — callers then fall back
// to demuxing and evaluating per lane (or to the scalar engine entirely).
func (t *LaneTrace) CompileLaneBool(e verilog.Expr) CompiledLaneBool {
	if t.urows != nil {
		return t.compileLaneBool4(e)
	}
	le, ok := t.lp.svaLane[e]
	if !ok {
		return nil
	}
	if t.em == nil {
		t.em = traceLmach(t.lp, t.rows)
	}
	m := t.em
	if le.bit != nil {
		fn := le.bit
		return func(cycle int) (uint64, uint64, error) {
			m.bits, m.wide, m.idx, m.err = t.rows[cycle].bits, t.rows[cycle].wide, cycle, nil
			w := fn(m)
			return w, 0, m.err
		}
	}
	fn := le.vec
	return func(cycle int) (uint64, uint64, error) {
		m.bits, m.wide, m.idx, m.err = t.rows[cycle].bits, t.rows[cycle].wide, cycle, nil
		v := fn(m)
		var w uint64
		for l := 0; l < 64; l++ {
			if v[l] != 0 {
				w |= 1 << uint(l)
			}
		}
		return w, 0, m.err
	}
}

// RunLanes simulates a lane batch in the given value domain. Any execution
// error (unsettled logic, failing sampled-value call in any lane — lane
// mode evaluates a superset of each lane's scalar expressions under
// predication) aborts the whole batch; callers re-run the lanes one by one
// on the scalar engine, which reproduces scalar behaviour exactly.
func RunLanes(d *compile.Design, ls *LaneStimulus, mode Mode) (*LaneTrace, error) {
	return RunLanesCtx(context.Background(), d, ls, mode)
}

// RunLanesCtx is RunLanes under a context, polled between cycles like the
// scalar run loops. A cancelled batch returns ctx.Err(); formal's lane
// batching propagates that instead of demoting the batch to scalar runs.
func RunLanesCtx(ctx context.Context, d *compile.Design, ls *LaneStimulus, mode Mode) (*LaneTrace, error) {
	if ls.N < 1 || ls.N > 64 {
		return nil, fmt.Errorf("sim: lane batch must hold 1..64 lanes, got %d", ls.N)
	}
	if mode == FourState {
		return runLanes4(ctx, d, ls)
	}
	done := ctx.Done()
	p := PlanOf(d)
	if p == nil {
		return nil, fmt.Errorf("sim: design has no execution plan (lane mode unavailable)")
	}
	lp := p.lanes()
	if lp == nil {
		return nil, fmt.Errorf("sim: design has no lane plan (lane mode unavailable)")
	}
	slots, err := laneInputSlots(d, ls.Inputs)
	if err != nil {
		return nil, err
	}
	m := newLmach(lp)
	if err := m.settleLanes(); err != nil {
		return nil, err
	}
	lc := laneClocksOf(d)
	lt := &LaneTrace{Design: d, plan: p, lp: lp, n: ls.N, rows: make([]laneRow, 0, ls.Depth)}
	for c := 0; c < ls.Depth; c++ {
		if stopped(done) {
			return nil, ctx.Err()
		}
		if lc != nil {
			lc.capture(m.bits, nil)
		}
		for i, slot := range slots {
			if lp.isBit[slot] {
				m.bits[slot] = replicateLanes(ls.Bits[c][i], ls.N)
				continue
			}
			dst := m.wide[slot]
			copy(dst, ls.Wide[c][i])
			for l := ls.N; l < 64; l++ {
				dst[l] = dst[ls.N-1]
			}
		}
		if err := m.settleLanes(); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", c, err)
		}
		lt.rows = append(lt.rows, snapshotLaneRow(m.bits, m.wide))
		var fired []uint64
		if lc != nil {
			fired = lc.fired(m.bits, nil)
			lt.fired = append(lt.fired, append([]uint64(nil), fired...))
		}
		if err := m.edgeLanes(fired); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", c, err)
		}
	}
	return lt, nil
}

func laneInputSlots(d *compile.Design, inputs []*compile.Signal) ([]int32, error) {
	slots := make([]int32, len(inputs))
	for i, in := range inputs {
		sig := d.Signals[in.Name]
		if sig == nil || sig.Kind != compile.SigInput {
			return nil, fmt.Errorf("sim: %q is not an input", in.Name)
		}
		slots[i] = int32(sig.Slot)
	}
	return slots, nil
}

func snapshotLaneRow(bits []uint64, wide [][]uint64) laneRow {
	row := laneRow{bits: make([]uint64, len(bits)), wide: make([][]uint64, len(wide))}
	copy(row.bits, bits)
	for s, vv := range wide {
		if vv == nil {
			continue
		}
		cp := make([]uint64, 64)
		copy(cp, vv)
		row.wide[s] = cp
	}
	return row
}
