package sim

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/compile"
	"repro/internal/verilog"
)

// Plan is the compile-once execution plan for a design. Built by PlanOf the
// first time a design is simulated and cached on the design itself (so
// internal/verify's verdict cache keeps plans alive alongside verdicts), it
// lowers every continuous assignment, always block and assertion-referenced
// expression into slot-addressed evaluation closures over []uint64 state.
// The hot loop then never touches the AST and never hashes a signal name.
//
// A Plan is immutable after construction and safe for concurrent use; all
// mutable state lives in the per-run mach.
type Plan struct {
	design  *compile.Design
	nslots  int
	masks   []uint64 // per-slot width masks
	initRow []uint64

	assigns []planAssign
	combs   []stmtFn
	seqs    []stmtFn

	// seqDomain[i] is the clock-domain index of seqs[i] (aligned with
	// design.SeqAlways and design.DomainOf); nil for single-domain designs,
	// whose edges run every block unconditionally.
	seqDomain []int

	// svaExpr maps every expression reachable from the design's assertions
	// (terms, disable-iff) to its compiled form, keyed by AST node identity.
	// Trace.CompileExpr resolves through this map at the API boundary.
	svaExpr map[verilog.Expr]evalFn

	// once4/p4 hold the lazily-built four-state lowering (plan4.go). It is
	// built on the first four-state run so two-state plan construction and
	// execution pay nothing for it.
	once4 sync.Once
	p4    *plan4

	// onceL/pl and onceL4/pl4 hold the lazily-built lane-parallel lowerings
	// (lanes.go / lanes4.go), cached with the same once-per-plan discipline
	// so concurrent lane batches share one compiled artifact.
	onceL  sync.Once
	pl     *LanePlan
	onceL4 sync.Once
	pl4    *lanePlan4
}

// evalFn evaluates a compiled expression against the machine state.
// Failures are recorded via mach.fail; the returned value is then 0.
type evalFn func(m *mach) uint64

// stmtFn executes a compiled statement against the machine state.
type stmtFn func(m *mach)

// planAssign is one compiled continuous assignment.
type planAssign struct {
	rhs   evalFn
	store stmtVFn
}

// stmtVFn stores a value into a compiled assignment target.
type stmtVFn func(m *mach, v uint64)

// PlanOf returns the design's compiled execution plan, building and caching
// it on first use. It returns nil when the design uses a construct the
// planner cannot lower (dynamic slice bounds, non-constant replication
// counts); callers then fall back to the reference interpreter, which
// remains the semantic oracle.
func PlanOf(d *compile.Design) *Plan {
	v := d.CachedPlan(func() any { return buildPlan(d) })
	p, _ := v.(*Plan)
	return p
}

// mach is the mutable execution state for one simulation run or one trace
// evaluation. Overlay and nonblocking-commit sets use generation counters
// so clearing between blocks and edges is O(1).
type mach struct {
	p    *Plan
	vals []uint64 // committed state; during trace eval, aliases rows[idx]

	// Blocking-assignment overlay: reads inside a block see ovlVal[s] when
	// ovlGen[s] == gen. gen is bumped to invalidate the whole overlay.
	ovlVal  []uint64
	ovlGen  []uint32
	gen     uint32
	touched []int32 // slots written in the current comb block, write order

	// Post-edge commit set: the value each written slot takes at the edge,
	// last write in program order winning.
	nbaVal  []uint64
	nbaGen  []uint32
	ngen    uint32
	nbaList []int32

	changed bool

	// Four-state planes, allocated only for four-state runs (nil otherwise).
	// They share the generation counters above: a four-state write always
	// touches both planes under one generation bump.
	unks   []uint64
	ovlUnk []uint64
	nbaUnk []uint64

	// Trace-evaluation state for sampled-value functions: rows is the full
	// sampled history and idx the cycle under evaluation. rows4 is the
	// unknown-bit plane of a four-state trace.
	rows  [][]uint64
	rows4 [][]uint64
	idx   int

	err error
}

func newMach(p *Plan) *mach {
	n := p.nslots
	m := &mach{
		p:      p,
		vals:   make([]uint64, n),
		ovlVal: make([]uint64, n),
		ovlGen: make([]uint32, n),
		gen:    1,
		nbaVal: make([]uint64, n),
		nbaGen: make([]uint32, n),
		ngen:   1,
	}
	copy(m.vals, p.initRow)
	return m
}

// traceMach returns a machine for evaluating compiled expressions over
// sampled trace rows: no overlay, vals aliased to the row under evaluation.
func traceMach(p *Plan, rows [][]uint64) *mach {
	n := p.nslots
	return &mach{p: p, ovlGen: make([]uint32, n), gen: 1, rows: rows}
}

func (m *mach) fail(err error) {
	if m.err == nil {
		m.err = err
	}
}

func (m *mach) read(slot int32) uint64 {
	if m.ovlGen[slot] == m.gen {
		return m.ovlVal[slot]
	}
	return m.vals[slot]
}

// writeOvl records a blocking write visible to later reads in the block.
func (m *mach) writeOvl(slot int32, v uint64) {
	if m.ovlGen[slot] != m.gen {
		m.ovlGen[slot] = m.gen
		m.touched = append(m.touched, slot)
	}
	m.ovlVal[slot] = v
}

// writeNBA records a post-edge commit; the last write in program order wins.
func (m *mach) writeNBA(slot int32, v uint64) {
	if m.nbaGen[slot] != m.ngen {
		m.nbaGen[slot] = m.ngen
		m.nbaList = append(m.nbaList, slot)
	}
	m.nbaVal[slot] = v
}

func (m *mach) setInput(name string, v uint64) error {
	sig := m.p.design.Signals[name]
	if sig == nil || sig.Kind != compile.SigInput {
		return fmt.Errorf("sim: %q is not an input", name)
	}
	m.vals[sig.Slot] = v & m.p.masks[sig.Slot]
	return nil
}

// settle evaluates continuous assignments and combinational always blocks
// to a fixpoint, mirroring Simulator.settle over slot state.
func (m *mach) settle() error {
	p := m.p
	for iter := 0; iter < maxCombIterations; iter++ {
		m.changed = false
		m.gen++ // assigns read committed state, never a stale overlay
		for i := range p.assigns {
			a := &p.assigns[i]
			a.store(m, a.rhs(m))
		}
		for _, body := range p.combs {
			m.gen++
			m.touched = m.touched[:0]
			body(m)
			if m.err != nil {
				return m.err
			}
			for _, slot := range m.touched {
				if v := m.ovlVal[slot]; m.vals[slot] != v {
					m.vals[slot] = v
					m.changed = true
				}
			}
		}
		if m.err != nil {
			return m.err
		}
		if !m.changed {
			return nil
		}
	}
	return fmt.Errorf("sim: combinational logic did not settle (cycle?)")
}

// edge mirrors Simulator.edge: sequential blocks run against pre-edge
// values with a per-block blocking overlay, writes commit in program order,
// then combinational logic settles.
func (m *mach) edge() error { return m.edgeFired(firedAll) }

// edgeFired runs the clock edge for the domains selected by fired (bit k =
// design.Domains[k] ticked). Single-domain plans have no seqDomain and run
// every block regardless of the mask.
func (m *mach) edgeFired(fired uint64) error {
	m.ngen++
	m.nbaList = m.nbaList[:0]
	dom := m.p.seqDomain
	for i, body := range m.p.seqs {
		if dom != nil && fired>>uint(dom[i])&1 == 0 {
			continue
		}
		m.gen++ // fresh blocking overlay per block
		m.touched = m.touched[:0]
		body(m)
		if m.err != nil {
			return m.err
		}
	}
	for _, slot := range m.nbaList {
		m.vals[slot] = m.nbaVal[slot]
	}
	return m.settle()
}

// ---------------------------------------------------------------------------
// Plan construction
// ---------------------------------------------------------------------------

// errUnplannable aborts plan construction; the design falls back to the
// reference interpreter.
type errUnplannable struct{ reason string }

func (e errUnplannable) Error() string { return "sim: unplannable design: " + e.reason }

type planCompiler struct {
	d *compile.Design
	p *Plan
}

func buildPlan(d *compile.Design) *Plan {
	c := &planCompiler{d: d, p: &Plan{
		design:  d,
		nslots:  d.SlotCount(),
		svaExpr: map[verilog.Expr]evalFn{},
	}}
	p := c.p
	p.masks = make([]uint64, p.nslots)
	p.initRow = make([]uint64, p.nslots)
	for _, name := range d.Order {
		sig := d.Signals[name]
		p.masks[sig.Slot] = sig.Mask()
	}
	for name, init := range d.RegInit {
		if sig := d.Signals[name]; sig != nil {
			p.initRow[sig.Slot] = init & sig.Mask()
		}
	}
	if d.MultiClock() {
		p.seqDomain = d.DomainOf
	}
	ok := func() bool {
		for _, as := range d.Assigns {
			rhs, err := c.compileExpr(as.RHS)
			if err != nil {
				return false
			}
			store, err := c.compileStore(as.LHS, wAssign)
			if err != nil {
				return false
			}
			p.assigns = append(p.assigns, planAssign{rhs: rhs, store: store})
		}
		for _, al := range d.CombAlways {
			body, err := c.compileStmt(al.Body, false)
			if err != nil {
				return false
			}
			p.combs = append(p.combs, body)
		}
		for _, al := range d.SeqAlways {
			body, err := c.compileStmt(al.Body, true)
			if err != nil {
				return false
			}
			p.seqs = append(p.seqs, body)
		}
		return true
	}()
	if !ok {
		return nil
	}
	// Assertion-referenced expressions: compile failures here degrade to the
	// interpretive evaluator per-expression (Trace.CompileExpr's fallback),
	// they do not invalidate the simulation plan.
	for i := range d.Asserts {
		a := &d.Asserts[i]
		c.compileSVAExpr(a.DisableIff)
		if a.Seq != nil {
			for _, t := range a.Seq.Antecedent {
				c.compileSVAExpr(t.Expr)
			}
			for _, t := range a.Seq.Consequent {
				c.compileSVAExpr(t.Expr)
			}
		}
	}
	return p
}

func (c *planCompiler) compileSVAExpr(e verilog.Expr) {
	if e == nil {
		return
	}
	if fn, err := c.compileExpr(e); err == nil {
		c.p.svaExpr[e] = fn
	}
}

// writeMode selects where a compiled store lands and what read-modify-write
// bit/slice targets use as their base value.
type writeMode int

const (
	wAssign      writeMode = iota // continuous assign: direct, change-detected
	wComb                         // comb always: blocking overlay
	wSeqBlocking                  // seq blocking: overlay + program-order commit
	wSeqNBA                       // seq nonblocking: program-order commit only
)

// constEval evaluates an expression that may reference parameters but no
// signals, at plan-compile time.
func (c *planCompiler) constEval(e verilog.Expr) (uint64, bool) {
	v, err := Eval(e, paramOnlyEnv{d: c.d})
	return v, err == nil
}

// paramOnlyEnv resolves parameters only; signal references fail, marking
// the expression non-constant.
type paramOnlyEnv struct{ d *compile.Design }

// Value implements Env.
func (e paramOnlyEnv) Value(name string) (uint64, bool) {
	v, ok := e.d.Params[name]
	return v, ok
}

// Width implements Env.
func (paramOnlyEnv) Width(string) int { return 0 }

// staticWidth mirrors ExprWidth but requires the width to be decidable at
// plan-compile time (slice bounds and replication counts constant).
func (c *planCompiler) staticWidth(e verilog.Expr) (int, bool) {
	switch x := e.(type) {
	case *verilog.Number:
		if x.Width > 0 {
			return x.Width, true
		}
		return 32, true
	case *verilog.Ident:
		if sig := c.d.Signals[x.Name]; sig != nil && sig.Width > 0 {
			return sig.Width, true
		}
		return 32, true
	case *verilog.Unary:
		switch x.Op {
		case verilog.UnaryLogicalNot, verilog.UnaryRedAnd, verilog.UnaryRedOr,
			verilog.UnaryRedXor, verilog.UnaryRedXnor:
			return 1, true
		}
		return c.staticWidth(x.X)
	case *verilog.Binary:
		switch x.Op {
		case verilog.BinLogAnd, verilog.BinLogOr, verilog.BinEq, verilog.BinNe,
			verilog.BinCaseEq, verilog.BinCaseNe, verilog.BinLt, verilog.BinLe,
			verilog.BinGt, verilog.BinGe:
			return 1, true
		case verilog.BinShl, verilog.BinShr, verilog.BinAShr:
			return c.staticWidth(x.X)
		}
		a, ok1 := c.staticWidth(x.X)
		b, ok2 := c.staticWidth(x.Y)
		return max(a, b), ok1 && ok2
	case *verilog.Ternary:
		a, ok1 := c.staticWidth(x.X)
		b, ok2 := c.staticWidth(x.Y)
		return max(a, b), ok1 && ok2
	case *verilog.Index:
		return 1, true
	case *verilog.Slice:
		hi, ok1 := c.constEval(x.Hi)
		lo, ok2 := c.constEval(x.Lo)
		if ok1 && ok2 && hi >= lo {
			return int(hi-lo) + 1, true
		}
		return 1, false
	case *verilog.Concat:
		w := 0
		for _, el := range x.Elems {
			ew, ok := c.staticWidth(el)
			if !ok {
				return 1, false
			}
			w += ew
		}
		return w, true
	case *verilog.Repl:
		n, ok := c.constEval(x.Count)
		if !ok {
			return 1, false
		}
		ew, ok2 := c.staticWidth(x.Elem)
		return int(n) * ew, ok2
	case *verilog.Call:
		switch x.Name {
		case "$rose", "$fell", "$stable", "$changed", "$onehot", "$onehot0", "$isunknown":
			return 1, true
		case "$countones":
			return 32, true
		}
		if len(x.Args) > 0 {
			return c.staticWidth(x.Args[0])
		}
		return 32, true
	}
	return 32, false
}

// ---------------------------------------------------------------------------
// Statement compilation
// ---------------------------------------------------------------------------

func (c *planCompiler) compileStmt(s verilog.Stmt, seq bool) (stmtFn, error) {
	switch x := s.(type) {
	case nil:
		return func(*mach) {}, nil
	case *verilog.Block:
		fns := make([]stmtFn, 0, len(x.Stmts))
		for _, sub := range x.Stmts {
			fn, err := c.compileStmt(sub, seq)
			if err != nil {
				return nil, err
			}
			fns = append(fns, fn)
		}
		return func(m *mach) {
			for _, fn := range fns {
				fn(m)
				if m.err != nil {
					return
				}
			}
		}, nil
	case *verilog.Blocking:
		mode := wComb
		if seq {
			mode = wSeqBlocking
		}
		return c.compileAssignStmt(x.LHS, x.RHS, mode)
	case *verilog.NonBlocking:
		// In combinational blocks the interpreter executes nonblocking
		// assignments with blocking semantics; mirror that.
		mode := wComb
		if seq {
			mode = wSeqNBA
		}
		return c.compileAssignStmt(x.LHS, x.RHS, mode)
	case *verilog.If:
		cond, err := c.compileExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		then, err := c.compileStmt(x.Then, seq)
		if err != nil {
			return nil, err
		}
		if x.Else == nil {
			return func(m *mach) {
				if cond(m) != 0 {
					then(m)
				}
			}, nil
		}
		els, err := c.compileStmt(x.Else, seq)
		if err != nil {
			return nil, err
		}
		return func(m *mach) {
			if cond(m) != 0 {
				then(m)
			} else {
				els(m)
			}
		}, nil
	case *verilog.Case:
		subj, err := c.compileExpr(x.Subject)
		if err != nil {
			return nil, err
		}
		type caseArm struct {
			labels []evalFn
			body   stmtFn
		}
		arms := make([]caseArm, 0, len(x.Items))
		var deflt stmtFn
		for _, item := range x.Items {
			body, err := c.compileStmt(item.Body, seq)
			if err != nil {
				return nil, err
			}
			if item.Exprs == nil {
				deflt = body
				continue
			}
			labels := make([]evalFn, 0, len(item.Exprs))
			for _, le := range item.Exprs {
				lf, err := c.compileExpr(le)
				if err != nil {
					return nil, err
				}
				labels = append(labels, lf)
			}
			arms = append(arms, caseArm{labels: labels, body: body})
		}
		return func(m *mach) {
			sv := subj(m)
			for i := range arms {
				for _, lf := range arms[i].labels {
					if lf(m) == sv {
						arms[i].body(m)
						return
					}
					if m.err != nil {
						return
					}
				}
			}
			if deflt != nil {
				deflt(m)
			}
		}, nil
	}
	return nil, errUnplannable{fmt.Sprintf("statement %T", s)}
}

func (c *planCompiler) compileAssignStmt(lhs, rhs verilog.Expr, mode writeMode) (stmtFn, error) {
	rf, err := c.compileExpr(rhs)
	if err != nil {
		return nil, err
	}
	store, err := c.compileStore(lhs, mode)
	if err != nil {
		return nil, err
	}
	return func(m *mach) { store(m, rf(m)) }, nil
}

// compileStore lowers an assignment target. The returned function receives
// the unmasked RHS value and applies the mode's write discipline.
func (c *planCompiler) compileStore(lhs verilog.Expr, mode writeMode) (stmtVFn, error) {
	switch x := lhs.(type) {
	case *verilog.Ident:
		sig := c.d.Signals[x.Name]
		if sig == nil {
			return nil, errUnplannable{"assignment to unknown signal " + x.Name}
		}
		slot := int32(sig.Slot)
		mask := sig.Mask()
		switch mode {
		case wAssign:
			return func(m *mach, v uint64) {
				v &= mask
				if m.vals[slot] != v {
					m.vals[slot] = v
					m.changed = true
				}
			}, nil
		case wComb:
			return func(m *mach, v uint64) { m.writeOvl(slot, v&mask) }, nil
		case wSeqBlocking:
			return func(m *mach, v uint64) {
				v &= mask
				m.writeOvl(slot, v)
				m.writeNBA(slot, v)
			}, nil
		default: // wSeqNBA
			return func(m *mach, v uint64) { m.writeNBA(slot, v&mask) }, nil
		}
	case *verilog.Index:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return nil, errUnplannable{"unsupported assignment target"}
		}
		sig := c.d.Signals[id.Name]
		if sig == nil {
			return nil, errUnplannable{"assignment to unknown signal " + id.Name}
		}
		idxFn, err := c.compileExpr(x.Idx)
		if err != nil {
			return nil, err
		}
		base := c.rmwBase(int32(sig.Slot), mode)
		inner, err := c.compileStore(id, mode)
		if err != nil {
			return nil, err
		}
		return func(m *mach, v uint64) {
			idx := idxFn(m) & 63
			bit := uint64(1) << idx
			inner(m, (base(m)&^bit)|((v&1)<<idx))
		}, nil
	case *verilog.Slice:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return nil, errUnplannable{"unsupported assignment target"}
		}
		sig := c.d.Signals[id.Name]
		if sig == nil {
			return nil, errUnplannable{"assignment to unknown signal " + id.Name}
		}
		hi, ok1 := c.constEval(x.Hi)
		lo, ok2 := c.constEval(x.Lo)
		if !ok1 || !ok2 {
			return nil, errUnplannable{"dynamic slice bounds in assignment target"}
		}
		if lo > hi {
			return nil, errUnplannable{"invalid slice target"}
		}
		base := c.rmwBase(int32(sig.Slot), mode)
		inner, err := c.compileStore(id, mode)
		if err != nil {
			return nil, err
		}
		sm := maskFor(int(hi-lo)+1) << lo
		shift := uint(lo)
		return func(m *mach, v uint64) {
			inner(m, (base(m)&^sm)|((v<<shift)&sm))
		}, nil
	case *verilog.Concat:
		total := 0
		widths := make([]int, len(x.Elems))
		for i, el := range x.Elems {
			w, ok := c.staticWidth(el)
			if !ok {
				return nil, errUnplannable{"dynamic width in concat assignment target"}
			}
			widths[i] = w
			total += w
		}
		stores := make([]stmtVFn, len(x.Elems))
		shifts := make([]uint, len(x.Elems))
		elMasks := make([]uint64, len(x.Elems))
		shift := total
		for i, el := range x.Elems {
			shift -= widths[i]
			st, err := c.compileStore(el, mode)
			if err != nil {
				return nil, err
			}
			stores[i] = st
			shifts[i] = uint(shift)
			elMasks[i] = maskFor(widths[i])
		}
		return func(m *mach, v uint64) {
			for i, st := range stores {
				st(m, (v>>shifts[i])&elMasks[i])
			}
		}, nil
	}
	return nil, errUnplannable{fmt.Sprintf("assignment target %T", lhs)}
}

// rmwBase returns the base-value read for bit/slice read-modify-write under
// the given mode, matching the interpreter's overlay threading: comb and
// seq-blocking writes read through the blocking overlay; seq-nonblocking
// writes read the latest pending post-edge value first so earlier in-edge
// writes (blocking or nonblocking) are preserved.
func (c *planCompiler) rmwBase(slot int32, mode writeMode) evalFn {
	switch mode {
	case wAssign:
		return func(m *mach) uint64 { return m.vals[slot] }
	case wSeqNBA:
		return func(m *mach) uint64 {
			if m.nbaGen[slot] == m.ngen {
				return m.nbaVal[slot]
			}
			return m.read(slot)
		}
	default: // wComb, wSeqBlocking: blocking overlay then committed state
		return func(m *mach) uint64 { return m.read(slot) }
	}
}

// ---------------------------------------------------------------------------
// Expression compilation
// ---------------------------------------------------------------------------

func (c *planCompiler) compileExpr(e verilog.Expr) (evalFn, error) {
	switch x := e.(type) {
	case *verilog.Number:
		v := x.Value
		return func(*mach) uint64 { return v }, nil
	case *verilog.Ident:
		if sig := c.d.Signals[x.Name]; sig != nil {
			slot := int32(sig.Slot)
			return func(m *mach) uint64 { return m.read(slot) }, nil
		}
		if v, ok := c.d.Params[x.Name]; ok {
			return func(*mach) uint64 { return v }, nil
		}
		return nil, errUnplannable{"unknown signal " + x.Name}
	case *verilog.Unary:
		return c.compileUnary(x)
	case *verilog.Binary:
		return c.compileBinary(x)
	case *verilog.Ternary:
		cond, err := c.compileExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		xf, err := c.compileExpr(x.X)
		if err != nil {
			return nil, err
		}
		yf, err := c.compileExpr(x.Y)
		if err != nil {
			return nil, err
		}
		return func(m *mach) uint64 {
			if cond(m) != 0 {
				return xf(m)
			}
			return yf(m)
		}, nil
	case *verilog.Index:
		xf, err := c.compileExpr(x.X)
		if err != nil {
			return nil, err
		}
		idxFn, err := c.compileExpr(x.Idx)
		if err != nil {
			return nil, err
		}
		return func(m *mach) uint64 {
			// Evaluate the base before the index, matching the interpreter's
			// order so error effects are identical on both backends.
			v := xf(m)
			idx := idxFn(m)
			if idx >= 64 {
				return 0
			}
			return (v >> idx) & 1
		}, nil
	case *verilog.Slice:
		xf, err := c.compileExpr(x.X)
		if err != nil {
			return nil, err
		}
		hi, ok1 := c.constEval(x.Hi)
		lo, ok2 := c.constEval(x.Lo)
		if !ok1 || !ok2 {
			return nil, errUnplannable{"dynamic slice bounds"}
		}
		if lo > hi || lo >= 64 {
			pos := x.Pos
			hiC, loC := hi, lo
			return func(m *mach) uint64 {
				m.fail(evalErrf(pos, "invalid slice [%d:%d]", hiC, loC))
				return 0
			}, nil
		}
		shift := uint(lo)
		mask := maskFor(int(hi-lo) + 1)
		return func(m *mach) uint64 { return (xf(m) >> shift) & mask }, nil
	case *verilog.Concat:
		fns := make([]evalFn, len(x.Elems))
		widths := make([]uint, len(x.Elems))
		elMasks := make([]uint64, len(x.Elems))
		for i, el := range x.Elems {
			w, ok := c.staticWidth(el)
			if !ok {
				return nil, errUnplannable{"dynamic width in concat"}
			}
			fn, err := c.compileExpr(el)
			if err != nil {
				return nil, err
			}
			fns[i] = fn
			widths[i] = uint(w)
			elMasks[i] = maskFor(w)
		}
		return func(m *mach) uint64 {
			var out uint64
			for i, fn := range fns {
				out = (out << widths[i]) | (fn(m) & elMasks[i])
			}
			return out
		}, nil
	case *verilog.Repl:
		n, ok := c.constEval(x.Count)
		if !ok {
			return nil, errUnplannable{"dynamic replication count"}
		}
		w, ok := c.staticWidth(x.Elem)
		if !ok {
			return nil, errUnplannable{"dynamic width in replication"}
		}
		fn, err := c.compileExpr(x.Elem)
		if err != nil {
			return nil, err
		}
		mask := maskFor(w)
		uw := uint(w)
		if n > 64 {
			n = 64 // matches the interpreter's i < 64 bound
		}
		reps := int(n)
		return func(m *mach) uint64 {
			v := fn(m) & mask
			var out uint64
			for i := 0; i < reps; i++ {
				out = (out << uw) | v
			}
			return out
		}, nil
	case *verilog.Call:
		return c.compileCall(x)
	}
	return nil, errUnplannable{fmt.Sprintf("expression %T", e)}
}

func (c *planCompiler) compileUnary(x *verilog.Unary) (evalFn, error) {
	xf, err := c.compileExpr(x.X)
	if err != nil {
		return nil, err
	}
	w, ok := c.staticWidth(x.X)
	if !ok {
		return nil, errUnplannable{"dynamic operand width"}
	}
	mask := maskFor(w)
	switch x.Op {
	case verilog.UnaryLogicalNot:
		return func(m *mach) uint64 { return boolVal(xf(m)&mask == 0) }, nil
	case verilog.UnaryBitNot:
		return func(m *mach) uint64 { return ^xf(m) & mask }, nil
	case verilog.UnaryMinus:
		return func(m *mach) uint64 { return -(xf(m) & mask) & mask }, nil
	case verilog.UnaryPlus:
		return func(m *mach) uint64 { return xf(m) & mask }, nil
	case verilog.UnaryRedAnd:
		return func(m *mach) uint64 { return boolVal(xf(m)&mask == mask) }, nil
	case verilog.UnaryRedOr:
		return func(m *mach) uint64 { return boolVal(xf(m)&mask != 0) }, nil
	case verilog.UnaryRedXor:
		return func(m *mach) uint64 { return uint64(bits.OnesCount64(xf(m)&mask) & 1) }, nil
	case verilog.UnaryRedXnor:
		return func(m *mach) uint64 { return uint64(1 - bits.OnesCount64(xf(m)&mask)&1) }, nil
	}
	return nil, errUnplannable{"unary operator " + x.Op.String()}
}

func (c *planCompiler) compileBinary(x *verilog.Binary) (evalFn, error) {
	af, err := c.compileExpr(x.X)
	if err != nil {
		return nil, err
	}
	bf, err := c.compileExpr(x.Y)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case verilog.BinLogAnd:
		return func(m *mach) uint64 {
			if af(m) == 0 {
				return 0
			}
			return boolVal(bf(m) != 0)
		}, nil
	case verilog.BinLogOr:
		return func(m *mach) uint64 {
			if af(m) != 0 {
				return 1
			}
			return boolVal(bf(m) != 0)
		}, nil
	case verilog.BinAdd:
		return func(m *mach) uint64 { return af(m) + bf(m) }, nil
	case verilog.BinSub:
		return func(m *mach) uint64 { return af(m) - bf(m) }, nil
	case verilog.BinMul:
		return func(m *mach) uint64 { return af(m) * bf(m) }, nil
	case verilog.BinDiv:
		return func(m *mach) uint64 {
			// Evaluate both operands in the interpreter's order before the
			// zero check, so error effects (a failing $past in either
			// operand) are identical on both backends.
			a, b := af(m), bf(m)
			if b == 0 {
				return 0 // x in 4-state Verilog; 0 under two-state
			}
			return a / b
		}, nil
	case verilog.BinMod:
		return func(m *mach) uint64 {
			a, b := af(m), bf(m)
			if b == 0 {
				return 0
			}
			return a % b
		}, nil
	case verilog.BinAnd:
		return func(m *mach) uint64 { return af(m) & bf(m) }, nil
	case verilog.BinOr:
		return func(m *mach) uint64 { return af(m) | bf(m) }, nil
	case verilog.BinXor:
		return func(m *mach) uint64 { return af(m) ^ bf(m) }, nil
	case verilog.BinXnor:
		wx, ok1 := c.staticWidth(x.X)
		wy, ok2 := c.staticWidth(x.Y)
		if !ok1 || !ok2 {
			return nil, errUnplannable{"dynamic operand width"}
		}
		mask := maskFor(max(wx, wy))
		return func(m *mach) uint64 { return ^(af(m) ^ bf(m)) & mask }, nil
	case verilog.BinEq, verilog.BinCaseEq:
		return func(m *mach) uint64 { return boolVal(af(m) == bf(m)) }, nil
	case verilog.BinNe, verilog.BinCaseNe:
		return func(m *mach) uint64 { return boolVal(af(m) != bf(m)) }, nil
	case verilog.BinLt:
		return func(m *mach) uint64 { return boolVal(af(m) < bf(m)) }, nil
	case verilog.BinLe:
		return func(m *mach) uint64 { return boolVal(af(m) <= bf(m)) }, nil
	case verilog.BinGt:
		return func(m *mach) uint64 { return boolVal(af(m) > bf(m)) }, nil
	case verilog.BinGe:
		return func(m *mach) uint64 { return boolVal(af(m) >= bf(m)) }, nil
	case verilog.BinShl:
		return func(m *mach) uint64 {
			a, b := af(m), bf(m)
			if b >= 64 {
				return 0
			}
			return a << b
		}, nil
	case verilog.BinShr:
		return func(m *mach) uint64 {
			a, b := af(m), bf(m)
			if b >= 64 {
				return 0
			}
			return a >> b
		}, nil
	case verilog.BinAShr:
		w, ok := c.staticWidth(x.X)
		if !ok {
			return nil, errUnplannable{"dynamic operand width"}
		}
		return func(m *mach) uint64 { return ashr(af(m), bf(m), w) }, nil
	}
	return nil, errUnplannable{"binary operator " + x.Op.String()}
}

func (c *planCompiler) compileCall(x *verilog.Call) (evalFn, error) {
	if len(x.Args) == 0 {
		return nil, errUnplannable{x.Name + " without arguments"}
	}
	arg := x.Args[0]
	switch x.Name {
	case "$countones", "$onehot", "$onehot0":
		fn, err := c.compileExpr(arg)
		if err != nil {
			return nil, err
		}
		w, ok := c.staticWidth(arg)
		if !ok {
			return nil, errUnplannable{"dynamic operand width"}
		}
		mask := maskFor(w)
		switch x.Name {
		case "$countones":
			return func(m *mach) uint64 { return uint64(bits.OnesCount64(fn(m) & mask)) }, nil
		case "$onehot":
			return func(m *mach) uint64 { return boolVal(bits.OnesCount64(fn(m)&mask) == 1) }, nil
		default:
			return func(m *mach) uint64 { return boolVal(bits.OnesCount64(fn(m)&mask) <= 1) }, nil
		}
	case "$isunknown":
		fn, err := c.compileExpr(arg)
		if err != nil {
			return nil, err
		}
		// Two-state: never unknown; evaluate the argument for error effects.
		return func(m *mach) uint64 { fn(m); return 0 }, nil
	case "$signed", "$unsigned":
		return c.compileExpr(arg)
	case "$past":
		fn, err := c.compileExpr(arg)
		if err != nil {
			return nil, err
		}
		pos := x.Pos
		depthFn := evalFn(func(*mach) uint64 { return 1 })
		if len(x.Args) > 1 {
			depthFn, err = c.compileExpr(x.Args[1])
			if err != nil {
				return nil, err
			}
		}
		return func(m *mach) uint64 {
			if m.rows == nil {
				m.fail(evalErrf(pos, "$past outside sampled context"))
				return 0
			}
			nv := depthFn(m)
			if nv == 0 || nv > maxPastDepth {
				m.fail(evalErrf(pos, "$past depth %d out of range [1, %d]", nv, uint64(maxPastDepth)))
				return 0
			}
			j := m.idx - int(nv)
			if j < 0 {
				return 0 // before start of time: sampled default (0)
			}
			return m.evalAt(fn, j)
		}, nil
	case "$rose", "$fell", "$stable", "$changed":
		fn, err := c.compileExpr(arg)
		if err != nil {
			return nil, err
		}
		pos := x.Pos
		name := x.Name
		return func(m *mach) uint64 {
			if m.rows == nil {
				m.fail(evalErrf(pos, "%s outside sampled context", name))
				return 0
			}
			now := fn(m)
			var before uint64
			if m.idx > 0 {
				before = m.evalAt(fn, m.idx-1)
			}
			switch name {
			case "$rose":
				return boolVal(before&1 == 0 && now&1 == 1)
			case "$fell":
				return boolVal(before&1 == 1 && now&1 == 0)
			case "$stable":
				return boolVal(before == now)
			default:
				return boolVal(before != now)
			}
		}, nil
	}
	return nil, errUnplannable{"system function " + x.Name}
}

// evalAt evaluates a compiled expression against an earlier sampled row,
// restoring the current frame afterwards.
func (m *mach) evalAt(fn evalFn, idx int) uint64 {
	savedVals, savedIdx := m.vals, m.idx
	m.vals, m.idx = m.rows[idx], idx
	v := fn(m)
	m.vals, m.idx = savedVals, savedIdx
	return v
}
