package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/compile"
	"repro/internal/verilog"
)

// This file is the four-state lowering of the execution plan: the same
// compile-once, slot-indexed closure architecture as plan.go, but over
// two-plane V4 state. It is built lazily (Plan.fourState) on the first
// four-state run, so two-state simulation — the formal checker's hot path —
// pays nothing for it. The operator semantics live in v4.go and are shared
// with the reference interpreter (eval4.go), which the differential fuzzer
// holds this lowering against plane-for-plane.

// evalFn4 evaluates a compiled expression against four-state machine state.
type evalFn4 func(m *mach) V4

// stmtFn4 executes a compiled statement against four-state machine state.
type stmtFn4 func(m *mach)

// stmtVFn4 stores a four-state value into a compiled assignment target.
type stmtVFn4 func(m *mach, v V4)

// planAssign4 is one compiled continuous assignment.
type planAssign4 struct {
	rhs   evalFn4
	store stmtVFn4
}

// plan4 is the four-state half of an execution plan.
type plan4 struct {
	initUnk []uint64 // per-slot initial unknown masks (x until reset/init)

	assigns4 []planAssign4
	combs4   []stmtFn4
	seqs4    []stmtFn4

	// svaExpr4 mirrors Plan.svaExpr for four-state trace evaluation.
	svaExpr4 map[verilog.Expr]evalFn4
}

// fourState returns the plan's four-state lowering, building it on first
// use. Nil when some construct could not be lowered; callers fall back to
// the four-state reference interpreter.
func (p *Plan) fourState() *plan4 {
	p.once4.Do(func() { p.p4 = buildPlan4(p) })
	return p.p4
}

func buildPlan4(p *Plan) *plan4 {
	d := p.design
	c := &planCompiler4{c: planCompiler{d: d, p: p}}
	p4 := &plan4{svaExpr4: map[verilog.Expr]evalFn4{}}
	p4.initUnk = make([]uint64, p.nslots)
	for _, name := range d.Order {
		sig := d.Signals[name]
		p4.initUnk[sig.Slot] = sig.Mask()
	}
	for name := range d.RegInit {
		if sig := d.Signals[name]; sig != nil {
			p4.initUnk[sig.Slot] = d.RegInitX[name] & sig.Mask()
		}
	}
	ok := func() bool {
		for _, as := range d.Assigns {
			rhs, err := c.compileExpr4(as.RHS)
			if err != nil {
				return false
			}
			store, err := c.compileStore4(as.LHS, wAssign)
			if err != nil {
				return false
			}
			p4.assigns4 = append(p4.assigns4, planAssign4{rhs: rhs, store: store})
		}
		for _, al := range d.CombAlways {
			body, err := c.compileStmt4(al.Body, false)
			if err != nil {
				return false
			}
			p4.combs4 = append(p4.combs4, body)
		}
		for _, al := range d.SeqAlways {
			body, err := c.compileStmt4(al.Body, true)
			if err != nil {
				return false
			}
			p4.seqs4 = append(p4.seqs4, body)
		}
		return true
	}()
	if !ok {
		return nil
	}
	for i := range d.Asserts {
		a := &d.Asserts[i]
		c.compileSVAExpr4(p4, a.DisableIff)
		if a.Seq != nil {
			for _, t := range a.Seq.Antecedent {
				c.compileSVAExpr4(p4, t.Expr)
			}
			for _, t := range a.Seq.Consequent {
				c.compileSVAExpr4(p4, t.Expr)
			}
		}
	}
	return p4
}

// ---------------------------------------------------------------------------
// Four-state machine state
// ---------------------------------------------------------------------------

// newMach4 returns a machine with both value planes allocated and the
// initial unknown masks applied (every signal x except declared initials).
func newMach4(p *Plan, p4 *plan4) *mach {
	m := newMach(p)
	n := p.nslots
	m.unks = make([]uint64, n)
	m.ovlUnk = make([]uint64, n)
	m.nbaUnk = make([]uint64, n)
	copy(m.unks, p4.initUnk)
	return m
}

// traceMach4 returns a machine for evaluating compiled expressions over a
// four-state trace's sampled rows.
func traceMach4(p *Plan, rows, rows4 [][]uint64) *mach {
	n := p.nslots
	return &mach{p: p, ovlGen: make([]uint32, n), gen: 1, rows: rows, rows4: rows4}
}

func (m *mach) read4(slot int32) V4 {
	if m.ovlGen[slot] == m.gen {
		return V4{Val: m.ovlVal[slot], Unk: m.ovlUnk[slot]}
	}
	return V4{Val: m.vals[slot], Unk: m.unks[slot]}
}

// writeOvl4 records a blocking write visible to later reads in the block.
func (m *mach) writeOvl4(slot int32, v V4) {
	if m.ovlGen[slot] != m.gen {
		m.ovlGen[slot] = m.gen
		m.touched = append(m.touched, slot)
	}
	m.ovlVal[slot] = v.Val
	m.ovlUnk[slot] = v.Unk
}

// writeNBA4 records a post-edge commit; the last write in program order wins.
func (m *mach) writeNBA4(slot int32, v V4) {
	if m.nbaGen[slot] != m.ngen {
		m.nbaGen[slot] = m.ngen
		m.nbaList = append(m.nbaList, slot)
	}
	m.nbaVal[slot] = v.Val
	m.nbaUnk[slot] = v.Unk
}

// settle4 mirrors mach.settle over both value planes.
func (m *mach) settle4(p4 *plan4) error {
	for iter := 0; iter < maxCombIterations; iter++ {
		m.changed = false
		m.gen++ // assigns read committed state, never a stale overlay
		for i := range p4.assigns4 {
			a := &p4.assigns4[i]
			a.store(m, a.rhs(m))
		}
		for _, body := range p4.combs4 {
			m.gen++
			m.touched = m.touched[:0]
			body(m)
			if m.err != nil {
				return m.err
			}
			for _, slot := range m.touched {
				if v, u := m.ovlVal[slot], m.ovlUnk[slot]; m.vals[slot] != v || m.unks[slot] != u {
					m.vals[slot], m.unks[slot] = v, u
					m.changed = true
				}
			}
		}
		if m.err != nil {
			return m.err
		}
		if !m.changed {
			return nil
		}
	}
	return fmt.Errorf("sim: combinational logic did not settle (cycle?)")
}

// edge4 mirrors mach.edge over both value planes.
func (m *mach) edge4(p4 *plan4) error { return m.edge4Fired(p4, firedAll) }

// edge4Fired mirrors mach.edgeFired: the edge runs only the blocks whose
// domain bit is set in fired (seqs4 is index-aligned with seqDomain).
func (m *mach) edge4Fired(p4 *plan4, fired uint64) error {
	m.ngen++
	m.nbaList = m.nbaList[:0]
	dom := m.p.seqDomain
	for i, body := range p4.seqs4 {
		if dom != nil && fired>>uint(dom[i])&1 == 0 {
			continue
		}
		m.gen++ // fresh blocking overlay per block
		m.touched = m.touched[:0]
		body(m)
		if m.err != nil {
			return m.err
		}
	}
	for _, slot := range m.nbaList {
		m.vals[slot] = m.nbaVal[slot]
		m.unks[slot] = m.nbaUnk[slot]
	}
	return m.settle4(p4)
}

func (m *mach) setInput4(name string, v uint64) error {
	sig := m.p.design.Signals[name]
	if sig == nil || sig.Kind != compile.SigInput {
		return fmt.Errorf("sim: %q is not an input", name)
	}
	m.vals[sig.Slot] = v & m.p.masks[sig.Slot]
	m.unks[sig.Slot] = 0
	return nil
}

// evalAt4 evaluates a compiled expression against an earlier sampled row,
// restoring the current frame afterwards.
func (m *mach) evalAt4(fn evalFn4, idx int) V4 {
	savedVals, savedUnks, savedIdx := m.vals, m.unks, m.idx
	m.vals, m.unks, m.idx = m.rows[idx], m.rows4[idx], idx
	v := fn(m)
	m.vals, m.unks, m.idx = savedVals, savedUnks, savedIdx
	return v
}

// ---------------------------------------------------------------------------
// Statement compilation
// ---------------------------------------------------------------------------

// planCompiler4 lowers AST nodes into four-state closures, sharing the
// two-state compiler's constant folding and static width analysis.
type planCompiler4 struct {
	c planCompiler
}

// constEval4 evaluates a compile-time constant (parameters only, no
// signals) in the four-state domain and requires every bit to be known.
// An x/z-bearing bound or count (e.g. in[2'b1x:0]) makes the construct
// unplannable, so the whole design falls back to the reference
// interpreter's four-state rules (unknown bounds read all-x, unknown-bound
// stores are no-ops) instead of silently constant-folding the x bits to 0.
func (c *planCompiler4) constEval4(e verilog.Expr) (uint64, bool) {
	v, err := Eval4(e, paramOnlyEnv{d: c.c.d})
	if err != nil || v.Unk != 0 {
		return 0, false
	}
	return v.Val, true
}

func (c *planCompiler4) compileSVAExpr4(p4 *plan4, e verilog.Expr) {
	if e == nil {
		return
	}
	if fn, err := c.compileExpr4(e); err == nil {
		p4.svaExpr4[e] = fn
	}
}

func (c *planCompiler4) compileStmt4(s verilog.Stmt, seq bool) (stmtFn4, error) {
	switch x := s.(type) {
	case nil:
		return func(*mach) {}, nil
	case *verilog.Block:
		fns := make([]stmtFn4, 0, len(x.Stmts))
		for _, sub := range x.Stmts {
			fn, err := c.compileStmt4(sub, seq)
			if err != nil {
				return nil, err
			}
			fns = append(fns, fn)
		}
		return func(m *mach) {
			for _, fn := range fns {
				fn(m)
				if m.err != nil {
					return
				}
			}
		}, nil
	case *verilog.Blocking:
		mode := wComb
		if seq {
			mode = wSeqBlocking
		}
		return c.compileAssignStmt4(x.LHS, x.RHS, mode)
	case *verilog.NonBlocking:
		// In combinational blocks the interpreter executes nonblocking
		// assignments with blocking semantics; mirror that.
		mode := wComb
		if seq {
			mode = wSeqNBA
		}
		return c.compileAssignStmt4(x.LHS, x.RHS, mode)
	case *verilog.If:
		cond, err := c.compileExpr4(x.Cond)
		if err != nil {
			return nil, err
		}
		then, err := c.compileStmt4(x.Then, seq)
		if err != nil {
			return nil, err
		}
		if x.Else == nil {
			return func(m *mach) {
				if cond(m).IsTrue() {
					then(m)
				}
			}, nil
		}
		els, err := c.compileStmt4(x.Else, seq)
		if err != nil {
			return nil, err
		}
		return func(m *mach) {
			// An x condition is treated as false (IEEE 1364 §9.4).
			if cond(m).IsTrue() {
				then(m)
			} else {
				els(m)
			}
		}, nil
	case *verilog.Case:
		subj, err := c.compileExpr4(x.Subject)
		if err != nil {
			return nil, err
		}
		type caseArm4 struct {
			labels []evalFn4
			body   stmtFn4
		}
		arms := make([]caseArm4, 0, len(x.Items))
		var deflt stmtFn4
		for _, item := range x.Items {
			body, err := c.compileStmt4(item.Body, seq)
			if err != nil {
				return nil, err
			}
			if item.Exprs == nil {
				deflt = body
				continue
			}
			labels := make([]evalFn4, 0, len(item.Exprs))
			for _, le := range item.Exprs {
				lf, err := c.compileExpr4(le)
				if err != nil {
					return nil, err
				}
				labels = append(labels, lf)
			}
			arms = append(arms, caseArm4{labels: labels, body: body})
		}
		return func(m *mach) {
			// Case labels match by case equality over both planes, like the
			// four-state interpreter.
			sv := subj(m)
			for i := range arms {
				for _, lf := range arms[i].labels {
					if lf(m) == sv {
						arms[i].body(m)
						return
					}
					if m.err != nil {
						return
					}
				}
			}
			if deflt != nil {
				deflt(m)
			}
		}, nil
	}
	return nil, errUnplannable{"statement (four-state)"}
}

func (c *planCompiler4) compileAssignStmt4(lhs, rhs verilog.Expr, mode writeMode) (stmtFn4, error) {
	rf, err := c.compileExpr4(rhs)
	if err != nil {
		return nil, err
	}
	store, err := c.compileStore4(lhs, mode)
	if err != nil {
		return nil, err
	}
	return func(m *mach) { store(m, rf(m)) }, nil
}

func (c *planCompiler4) compileStore4(lhs verilog.Expr, mode writeMode) (stmtVFn4, error) {
	switch x := lhs.(type) {
	case *verilog.Ident:
		sig := c.c.d.Signals[x.Name]
		if sig == nil {
			return nil, errUnplannable{"assignment to unknown signal " + x.Name}
		}
		slot := int32(sig.Slot)
		mask := sig.Mask()
		switch mode {
		case wAssign:
			return func(m *mach, v V4) {
				v = v.maskV(mask).norm()
				if m.vals[slot] != v.Val || m.unks[slot] != v.Unk {
					m.vals[slot] = v.Val
					m.unks[slot] = v.Unk
					m.changed = true
				}
			}, nil
		case wComb:
			return func(m *mach, v V4) { m.writeOvl4(slot, v.maskV(mask).norm()) }, nil
		case wSeqBlocking:
			return func(m *mach, v V4) {
				v = v.maskV(mask).norm()
				m.writeOvl4(slot, v)
				m.writeNBA4(slot, v)
			}, nil
		default: // wSeqNBA
			return func(m *mach, v V4) { m.writeNBA4(slot, v.maskV(mask).norm()) }, nil
		}
	case *verilog.Index:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return nil, errUnplannable{"unsupported assignment target"}
		}
		sig := c.c.d.Signals[id.Name]
		if sig == nil {
			return nil, errUnplannable{"assignment to unknown signal " + id.Name}
		}
		idxFn, err := c.compileExpr4(x.Idx)
		if err != nil {
			return nil, err
		}
		base := c.rmwBase4(int32(sig.Slot), mode)
		inner, err := c.compileStore4(id, mode)
		if err != nil {
			return nil, err
		}
		return func(m *mach, v V4) {
			idx := idxFn(m)
			if idx.Unk != 0 {
				return // write at an unknown index: no effect
			}
			sh := idx.Val & 63
			bit := uint64(1) << sh
			cur := base(m)
			inner(m, V4{
				Val: (cur.Val &^ bit) | ((v.Val & 1) << sh),
				Unk: (cur.Unk &^ bit) | ((v.Unk & 1) << sh),
			})
		}, nil
	case *verilog.Slice:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return nil, errUnplannable{"unsupported assignment target"}
		}
		sig := c.c.d.Signals[id.Name]
		if sig == nil {
			return nil, errUnplannable{"assignment to unknown signal " + id.Name}
		}
		hi, ok1 := c.constEval4(x.Hi)
		lo, ok2 := c.constEval4(x.Lo)
		if !ok1 || !ok2 {
			return nil, errUnplannable{"dynamic slice bounds in assignment target"}
		}
		if lo > hi {
			return nil, errUnplannable{"invalid slice target"}
		}
		base := c.rmwBase4(int32(sig.Slot), mode)
		inner, err := c.compileStore4(id, mode)
		if err != nil {
			return nil, err
		}
		sm := maskFor(int(hi-lo)+1) << lo
		shift := uint(lo)
		return func(m *mach, v V4) {
			cur := base(m)
			inner(m, V4{
				Val: (cur.Val &^ sm) | ((v.Val << shift) & sm),
				Unk: (cur.Unk &^ sm) | ((v.Unk << shift) & sm),
			})
		}, nil
	case *verilog.Concat:
		total := 0
		widths := make([]int, len(x.Elems))
		for i, el := range x.Elems {
			w, ok := c.c.staticWidth(el)
			if !ok {
				return nil, errUnplannable{"dynamic width in concat assignment target"}
			}
			widths[i] = w
			total += w
		}
		stores := make([]stmtVFn4, len(x.Elems))
		shifts := make([]uint, len(x.Elems))
		elMasks := make([]uint64, len(x.Elems))
		shift := total
		for i, el := range x.Elems {
			shift -= widths[i]
			st, err := c.compileStore4(el, mode)
			if err != nil {
				return nil, err
			}
			stores[i] = st
			shifts[i] = uint(shift)
			elMasks[i] = maskFor(widths[i])
		}
		return func(m *mach, v V4) {
			for i, st := range stores {
				st(m, V4{Val: (v.Val >> shifts[i]) & elMasks[i], Unk: (v.Unk >> shifts[i]) & elMasks[i]})
			}
		}, nil
	}
	return nil, errUnplannable{"assignment target (four-state)"}
}

// rmwBase4 mirrors rmwBase over both planes.
func (c *planCompiler4) rmwBase4(slot int32, mode writeMode) evalFn4 {
	switch mode {
	case wAssign:
		return func(m *mach) V4 { return V4{Val: m.vals[slot], Unk: m.unks[slot]} }
	case wSeqNBA:
		return func(m *mach) V4 {
			if m.nbaGen[slot] == m.ngen {
				return V4{Val: m.nbaVal[slot], Unk: m.nbaUnk[slot]}
			}
			return m.read4(slot)
		}
	default: // wComb, wSeqBlocking: blocking overlay then committed state
		return func(m *mach) V4 { return m.read4(slot) }
	}
}

// ---------------------------------------------------------------------------
// Expression compilation
// ---------------------------------------------------------------------------

func (c *planCompiler4) compileExpr4(e verilog.Expr) (evalFn4, error) {
	switch x := e.(type) {
	case *verilog.Number:
		v := V4{Val: x.Value, Unk: x.Unknown()}.norm()
		return func(*mach) V4 { return v }, nil
	case *verilog.Ident:
		if sig := c.c.d.Signals[x.Name]; sig != nil {
			slot := int32(sig.Slot)
			return func(m *mach) V4 { return m.read4(slot) }, nil
		}
		if v, ok := c.c.d.Params[x.Name]; ok {
			kv := known(v)
			return func(*mach) V4 { return kv }, nil
		}
		return nil, errUnplannable{"unknown signal " + x.Name}
	case *verilog.Unary:
		return c.compileUnary4(x)
	case *verilog.Binary:
		return c.compileBinary4(x)
	case *verilog.Ternary:
		cond, err := c.compileExpr4(x.Cond)
		if err != nil {
			return nil, err
		}
		xf, err := c.compileExpr4(x.X)
		if err != nil {
			return nil, err
		}
		yf, err := c.compileExpr4(x.Y)
		if err != nil {
			return nil, err
		}
		return func(m *mach) V4 {
			cv := cond(m)
			if cv.IsTrue() {
				return xf(m)
			}
			if cv.IsFalse() {
				return yf(m)
			}
			return v4Merge(xf(m), yf(m))
		}, nil
	case *verilog.Index:
		xf, err := c.compileExpr4(x.X)
		if err != nil {
			return nil, err
		}
		idxFn, err := c.compileExpr4(x.Idx)
		if err != nil {
			return nil, err
		}
		return func(m *mach) V4 {
			// Base before index, matching the interpreter's order.
			v := xf(m)
			idx := idxFn(m)
			if idx.Unk != 0 {
				return xBool
			}
			if idx.Val >= 64 {
				return V4{}
			}
			return V4{Val: (v.Val >> idx.Val) & 1, Unk: (v.Unk >> idx.Val) & 1}
		}, nil
	case *verilog.Slice:
		xf, err := c.compileExpr4(x.X)
		if err != nil {
			return nil, err
		}
		hi, ok1 := c.constEval4(x.Hi)
		lo, ok2 := c.constEval4(x.Lo)
		if !ok1 || !ok2 {
			return nil, errUnplannable{"dynamic slice bounds"}
		}
		if lo > hi || lo >= 64 {
			pos := x.Pos
			hiC, loC := hi, lo
			return func(m *mach) V4 {
				m.fail(evalErrf(pos, "invalid slice [%d:%d]", hiC, loC))
				return V4{}
			}, nil
		}
		shift := uint(lo)
		mask := maskFor(int(hi-lo) + 1)
		return func(m *mach) V4 {
			v := xf(m)
			return V4{Val: (v.Val >> shift) & mask, Unk: (v.Unk >> shift) & mask}
		}, nil
	case *verilog.Concat:
		fns := make([]evalFn4, len(x.Elems))
		widths := make([]uint, len(x.Elems))
		elMasks := make([]uint64, len(x.Elems))
		for i, el := range x.Elems {
			w, ok := c.c.staticWidth(el)
			if !ok {
				return nil, errUnplannable{"dynamic width in concat"}
			}
			fn, err := c.compileExpr4(el)
			if err != nil {
				return nil, err
			}
			fns[i] = fn
			widths[i] = uint(w)
			elMasks[i] = maskFor(w)
		}
		return func(m *mach) V4 {
			var out V4
			for i, fn := range fns {
				v := fn(m)
				out.Val = (out.Val << widths[i]) | (v.Val & elMasks[i])
				out.Unk = (out.Unk << widths[i]) | (v.Unk & elMasks[i])
			}
			return out
		}, nil
	case *verilog.Repl:
		n, ok := c.constEval4(x.Count)
		if !ok {
			return nil, errUnplannable{"dynamic replication count"}
		}
		w, ok := c.c.staticWidth(x.Elem)
		if !ok {
			return nil, errUnplannable{"dynamic width in replication"}
		}
		fn, err := c.compileExpr4(x.Elem)
		if err != nil {
			return nil, err
		}
		mask := maskFor(w)
		uw := uint(w)
		if n > 64 {
			n = 64 // matches the interpreter's i < 64 bound
		}
		reps := int(n)
		return func(m *mach) V4 {
			v := fn(m).maskV(mask)
			var out V4
			for i := 0; i < reps; i++ {
				out.Val = (out.Val << uw) | v.Val
				out.Unk = (out.Unk << uw) | v.Unk
			}
			return out
		}, nil
	case *verilog.Call:
		return c.compileCall4(x)
	}
	return nil, errUnplannable{"expression (four-state)"}
}

func (c *planCompiler4) compileUnary4(x *verilog.Unary) (evalFn4, error) {
	xf, err := c.compileExpr4(x.X)
	if err != nil {
		return nil, err
	}
	w, ok := c.c.staticWidth(x.X)
	if !ok {
		return nil, errUnplannable{"dynamic operand width"}
	}
	mask := maskFor(w)
	switch x.Op {
	case verilog.UnaryLogicalNot:
		return func(m *mach) V4 { return v4LogNot(xf(m).maskV(mask)) }, nil
	case verilog.UnaryBitNot:
		return func(m *mach) V4 { return v4Not(xf(m), mask) }, nil
	case verilog.UnaryMinus:
		return func(m *mach) V4 {
			v := xf(m).maskV(mask)
			if v.Unk != 0 {
				return V4{Unk: mask}
			}
			return known(-v.Val & mask)
		}, nil
	case verilog.UnaryPlus:
		return func(m *mach) V4 { return xf(m).maskV(mask) }, nil
	case verilog.UnaryRedAnd:
		return func(m *mach) V4 { return v4RedAnd(xf(m), mask) }, nil
	case verilog.UnaryRedOr:
		return func(m *mach) V4 { return v4RedOr(xf(m), mask) }, nil
	case verilog.UnaryRedXor:
		return func(m *mach) V4 { return v4RedXor(xf(m), mask) }, nil
	case verilog.UnaryRedXnor:
		return func(m *mach) V4 { return v4Not(v4RedXor(xf(m), mask), 1) }, nil
	}
	return nil, errUnplannable{"unary operator " + x.Op.String()}
}

func (c *planCompiler4) compileBinary4(x *verilog.Binary) (evalFn4, error) {
	af, err := c.compileExpr4(x.X)
	if err != nil {
		return nil, err
	}
	bf, err := c.compileExpr4(x.Y)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case verilog.BinLogAnd:
		return func(m *mach) V4 {
			a := af(m)
			if a.IsFalse() {
				return V4{}
			}
			return v4LogAnd(a, bf(m))
		}, nil
	case verilog.BinLogOr:
		return func(m *mach) V4 {
			a := af(m)
			if a.IsTrue() {
				return V4{Val: 1}
			}
			return v4LogOr(a, bf(m))
		}, nil
	case verilog.BinAdd:
		return func(m *mach) V4 {
			return v4Arith(af(m), bf(m), func(p, q uint64) uint64 { return p + q })
		}, nil
	case verilog.BinSub:
		return func(m *mach) V4 {
			return v4Arith(af(m), bf(m), func(p, q uint64) uint64 { return p - q })
		}, nil
	case verilog.BinMul:
		return func(m *mach) V4 {
			return v4Arith(af(m), bf(m), func(p, q uint64) uint64 { return p * q })
		}, nil
	case verilog.BinDiv:
		return func(m *mach) V4 {
			// Operands evaluate in the interpreter's order before the zero
			// check, so error effects agree between the engines.
			a, b := af(m), bf(m)
			return v4Div(a, b)
		}, nil
	case verilog.BinMod:
		return func(m *mach) V4 {
			a, b := af(m), bf(m)
			return v4Mod(a, b)
		}, nil
	case verilog.BinAnd:
		return func(m *mach) V4 { return v4And(af(m), bf(m)) }, nil
	case verilog.BinOr:
		return func(m *mach) V4 { return v4Or(af(m), bf(m)) }, nil
	case verilog.BinXor:
		return func(m *mach) V4 { return v4Xor(af(m), bf(m)) }, nil
	case verilog.BinXnor:
		wx, ok1 := c.c.staticWidth(x.X)
		wy, ok2 := c.c.staticWidth(x.Y)
		if !ok1 || !ok2 {
			return nil, errUnplannable{"dynamic operand width"}
		}
		mask := maskFor(max(wx, wy))
		return func(m *mach) V4 { return v4Not(v4Xor(af(m), bf(m)), mask) }, nil
	case verilog.BinEq:
		return func(m *mach) V4 { return v4Eq(af(m), bf(m)) }, nil
	case verilog.BinNe:
		return func(m *mach) V4 { return v4LogNot(v4Eq(af(m), bf(m))) }, nil
	case verilog.BinCaseEq:
		return func(m *mach) V4 { return v4CaseEq(af(m), bf(m)) }, nil
	case verilog.BinCaseNe:
		return func(m *mach) V4 { return v4LogNot(v4CaseEq(af(m), bf(m))) }, nil
	case verilog.BinLt:
		return func(m *mach) V4 {
			return v4RelArith(af(m), bf(m), func(p, q uint64) bool { return p < q })
		}, nil
	case verilog.BinLe:
		return func(m *mach) V4 {
			return v4RelArith(af(m), bf(m), func(p, q uint64) bool { return p <= q })
		}, nil
	case verilog.BinGt:
		return func(m *mach) V4 {
			return v4RelArith(af(m), bf(m), func(p, q uint64) bool { return p > q })
		}, nil
	case verilog.BinGe:
		return func(m *mach) V4 {
			return v4RelArith(af(m), bf(m), func(p, q uint64) bool { return p >= q })
		}, nil
	case verilog.BinShl:
		return func(m *mach) V4 { return v4Shl(af(m), bf(m)) }, nil
	case verilog.BinShr:
		return func(m *mach) V4 { return v4Shr(af(m), bf(m)) }, nil
	case verilog.BinAShr:
		w, ok := c.c.staticWidth(x.X)
		if !ok {
			return nil, errUnplannable{"dynamic operand width"}
		}
		return func(m *mach) V4 { return v4AShr(af(m), bf(m), w) }, nil
	}
	return nil, errUnplannable{"binary operator " + x.Op.String()}
}

func (c *planCompiler4) compileCall4(x *verilog.Call) (evalFn4, error) {
	if len(x.Args) == 0 {
		return nil, errUnplannable{x.Name + " without arguments"}
	}
	arg := x.Args[0]
	switch x.Name {
	case "$countones", "$onehot", "$onehot0", "$isunknown":
		fn, err := c.compileExpr4(arg)
		if err != nil {
			return nil, err
		}
		w, ok := c.c.staticWidth(arg)
		if !ok {
			return nil, errUnplannable{"dynamic operand width"}
		}
		mask := maskFor(w)
		switch x.Name {
		case "$countones":
			return func(m *mach) V4 {
				v := fn(m).maskV(mask)
				if v.Unk != 0 {
					return allX
				}
				return known(uint64(bits.OnesCount64(v.Val)))
			}, nil
		case "$onehot":
			return func(m *mach) V4 {
				v := fn(m).maskV(mask)
				if v.Unk != 0 {
					return xBool
				}
				return boolV4(bits.OnesCount64(v.Val) == 1)
			}, nil
		case "$onehot0":
			return func(m *mach) V4 {
				v := fn(m).maskV(mask)
				if v.Unk != 0 {
					return xBool
				}
				return boolV4(bits.OnesCount64(v.Val) <= 1)
			}, nil
		default: // $isunknown
			return func(m *mach) V4 { return boolV4(fn(m).Unk&mask != 0) }, nil
		}
	case "$signed", "$unsigned":
		return c.compileExpr4(arg)
	case "$past":
		fn, err := c.compileExpr4(arg)
		if err != nil {
			return nil, err
		}
		pos := x.Pos
		depthFn := evalFn4(func(*mach) V4 { return V4{Val: 1} })
		if len(x.Args) > 1 {
			depthFn, err = c.compileExpr4(x.Args[1])
			if err != nil {
				return nil, err
			}
		}
		return func(m *mach) V4 {
			if m.rows == nil {
				m.fail(evalErrf(pos, "$past outside sampled context"))
				return V4{}
			}
			nv := depthFn(m)
			if nv.Unk != 0 || nv.Val == 0 || nv.Val > maxPastDepth {
				m.fail(evalErrf(pos, "$past depth %d out of range [1, %d]", nv.Val, uint64(maxPastDepth)))
				return V4{}
			}
			j := m.idx - int(nv.Val)
			if j < 0 {
				return V4{} // before start of time: sampled default (0)
			}
			return m.evalAt4(fn, j)
		}, nil
	case "$rose", "$fell", "$stable", "$changed":
		fn, err := c.compileExpr4(arg)
		if err != nil {
			return nil, err
		}
		pos := x.Pos
		name := x.Name
		return func(m *mach) V4 {
			if m.rows == nil {
				m.fail(evalErrf(pos, "%s outside sampled context", name))
				return V4{}
			}
			now := fn(m)
			var before V4
			if m.idx > 0 {
				before = m.evalAt4(fn, m.idx-1)
			}
			return v4Sampled(name, before, now)
		}, nil
	}
	return nil, errUnplannable{"system function " + x.Name}
}
