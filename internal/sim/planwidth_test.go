package sim

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/corpus"
	"repro/internal/verilog"
)

// TestStaticWidthAgreesWithExprWidth pins the planner's compile-time width
// oracle to the interpreter's ExprWidth over every expression of every
// corpus design: whenever staticWidth claims a width is decidable, it must
// be the width the interpreter computes at runtime. Drift between the two
// would silently diverge the compiled and interpretive backends' masking.
func TestStaticWidthAgreesWithExprWidth(t *testing.T) {
	for _, bp := range corpus.Catalog() {
		d, diags, err := compile.Compile(bp.Source())
		if err != nil || compile.HasErrors(diags) || d == nil {
			t.Fatalf("%s: fixture broken", bp.Name())
		}
		s, err := New(d)
		if err != nil {
			t.Fatalf("%s: %v", bp.Name(), err)
		}
		env := simEnv{s: s}
		c := &planCompiler{d: d}
		check := func(e verilog.Expr) {
			verilog.WalkExpr(e, func(sub verilog.Expr) {
				w, ok := c.staticWidth(sub)
				if !ok {
					return
				}
				if got := ExprWidth(sub, env); got != w {
					t.Errorf("%s: staticWidth(%s)=%d but ExprWidth=%d",
						bp.Name(), verilog.ExprString(sub), w, got)
				}
			})
		}
		for _, as := range d.Assigns {
			check(as.LHS)
			check(as.RHS)
		}
		for _, al := range append(append([]*verilog.Always{}, d.CombAlways...), d.SeqAlways...) {
			verilog.WalkStmt(al.Body, func(st verilog.Stmt) {
				verilog.StmtExprs(st, check)
			})
		}
		for i := range d.Asserts {
			a := &d.Asserts[i]
			if a.DisableIff != nil {
				check(a.DisableIff)
			}
			if a.Seq != nil {
				for _, tm := range a.Seq.Antecedent {
					check(tm.Expr)
				}
				for _, tm := range a.Seq.Consequent {
					check(tm.Expr)
				}
			}
		}
	}
}

// The compiled Index evaluation must evaluate its base expression before
// the index short-circuit, so error effects (here: an invalid slice as the
// base) are identical on both backends.
func TestIndexBaseEvaluatedBeforeShortCircuit(t *testing.T) {
	src := `
module ix (
    input [7:0] v,
    output y
);
    assign y = v[70:64][100];
endmodule
`
	d := mustCompile(t, src)
	_, errPlan := Run(d, Stimulus{{"v": 1}})
	_, errRef := RunReference(mustCompile(t, src), Stimulus{{"v": 1}})
	if errPlan == nil || errRef == nil {
		t.Fatalf("invalid slice must fail on both backends: plan=%v reference=%v", errPlan, errRef)
	}
}
