// Lane-mode property tests that need the SVA checker (and therefore an
// external test package: internal/sva imports internal/sim).
package sim_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compile"
	"repro/internal/sim"
	"repro/internal/sva"
)

// qfailSrc fails p1 whenever a is high while b is low: random lane batches
// reliably contain both failing and passing lanes.
const qfailSrc = `
module qfail (
    input clk,
    input rst,
    input a,
    input b,
    output reg q
);
    always @(posedge clk) begin
        if (rst) q <= 0;
        else q <= a & b;
    end
    p1: assert property (@(posedge clk) disable iff (rst) a |=> q);
endmodule
`

// TestQuickLaneFailureReplay: every lane the batched checker marks failed
// must replay to a scalar failure on that lane's demuxed stimulus — the
// counterexample-extraction path formal uses — and every lane it marks
// clean must replay to a scalar pass. Runs in both value domains.
func TestQuickLaneFailureReplay(t *testing.T) {
	d, diags, err := compile.Compile(qfailSrc)
	if err != nil || compile.HasErrors(diags) {
		t.Fatal("fixture broken")
	}
	inputs := d.Inputs(false)
	f := func(seed int64, fourState bool) bool {
		mode := sim.TwoState
		if fourState {
			mode = sim.FourState
		}
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		const depth = 8
		stims := make([]sim.VecStimulus, n)
		for j := range stims {
			rows := make([][]uint64, depth)
			for c := range rows {
				row := make([]uint64, len(inputs))
				for i, in := range inputs {
					switch in.Name {
					case "rst":
						if c < 2 {
							row[i] = 1
						}
					default:
						row[i] = rng.Uint64() & in.Mask()
					}
				}
				rows[c] = row
			}
			stims[j] = sim.VecStimulus{Inputs: inputs, Rows: rows}
		}
		ls, err := sim.PackStimuli(stims)
		if err != nil {
			return false
		}
		lt, err := sim.RunLanes(d, ls, mode)
		if err != nil {
			return false
		}
		lres, err := sva.CheckLanes(lt)
		if err != nil {
			return false
		}
		for l := 0; l < n; l++ {
			tr, err := sim.RunVecMode(d, ls.LaneStimulusAt(l), mode)
			if err != nil {
				return false
			}
			res, err := sva.Check(tr)
			if err != nil {
				return false
			}
			if res.Failed() != (lres.Failed>>uint(l)&1 == 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
