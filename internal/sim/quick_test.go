package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compile"
)

const quickCounterSrc = `
module qcnt (
    input clk,
    input rst_n,
    input en,
    input [3:0] step,
    output reg [7:0] acc
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) acc <= 0;
        else if (en) acc <= acc + step;
    end
endmodule
`

// TestQuickSimDeterminism: identical stimuli always produce identical
// traces, regardless of how the stimulus was generated.
func TestQuickSimDeterminism(t *testing.T) {
	d, diags, err := compile.Compile(quickCounterSrc)
	if err != nil || compile.HasErrors(diags) {
		t.Fatal("fixture broken")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stim := make(Stimulus, 12)
		for i := range stim {
			stim[i] = map[string]uint64{
				"rst_n": uint64(boolToU(i > 0 || rng.Intn(2) == 0)),
				"en":    uint64(rng.Intn(2)),
				"step":  uint64(rng.Intn(16)),
			}
		}
		tr1, err1 := Run(d, stim)
		tr2, err2 := Run(d, stim)
		if err1 != nil || err2 != nil {
			return false
		}
		for c := 0; c < tr1.Len(); c++ {
			v1, _ := tr1.Value(c, "acc")
			v2, _ := tr2.Value(c, "acc")
			if v1 != v2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSimMasking: no signal ever exceeds its declared width, for any
// stimulus.
func TestQuickSimMasking(t *testing.T) {
	d, diags, err := compile.Compile(quickCounterSrc)
	if err != nil || compile.HasErrors(diags) {
		t.Fatal("fixture broken")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stim := make(Stimulus, 16)
		for i := range stim {
			stim[i] = map[string]uint64{
				"rst_n": uint64(rng.Intn(2)),
				"en":    rng.Uint64(), // deliberately over-wide inputs
				"step":  rng.Uint64(),
			}
		}
		tr, err := Run(d, stim)
		if err != nil {
			return false
		}
		for c := 0; c < tr.Len(); c++ {
			for name, sig := range d.Signals {
				v, ok := tr.Value(c, name)
				if !ok {
					continue
				}
				if v&^sig.Mask() != 0 {
					t.Logf("cycle %d: %s = %#x exceeds %d bits", c, name, v, sig.Width)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickResetDominates: whenever reset is asserted at a sample point,
// the register reads zero on the following cycle, for any stimulus.
func TestQuickResetDominates(t *testing.T) {
	d, diags, err := compile.Compile(quickCounterSrc)
	if err != nil || compile.HasErrors(diags) {
		t.Fatal("fixture broken")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stim := make(Stimulus, 16)
		for i := range stim {
			stim[i] = map[string]uint64{
				"rst_n": uint64(rng.Intn(2)),
				"en":    1,
				"step":  uint64(1 + rng.Intn(15)),
			}
		}
		tr, err := Run(d, stim)
		if err != nil {
			return false
		}
		for c := 0; c < tr.Len()-1; c++ {
			rstn, _ := tr.Value(c, "rst_n")
			if rstn == 0 {
				if acc, _ := tr.Value(c+1, "acc"); acc != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func boolToU(b bool) int {
	if b {
		return 1
	}
	return 0
}
