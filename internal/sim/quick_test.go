package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compile"
)

const quickCounterSrc = `
module qcnt (
    input clk,
    input rst_n,
    input en,
    input [3:0] step,
    output reg [7:0] acc
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) acc <= 0;
        else if (en) acc <= acc + step;
    end
endmodule
`

// TestQuickSimDeterminism: identical stimuli always produce identical
// traces, regardless of how the stimulus was generated.
func TestQuickSimDeterminism(t *testing.T) {
	d, diags, err := compile.Compile(quickCounterSrc)
	if err != nil || compile.HasErrors(diags) {
		t.Fatal("fixture broken")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stim := make(Stimulus, 12)
		for i := range stim {
			stim[i] = map[string]uint64{
				"rst_n": uint64(boolToU(i > 0 || rng.Intn(2) == 0)),
				"en":    uint64(rng.Intn(2)),
				"step":  uint64(rng.Intn(16)),
			}
		}
		tr1, err1 := Run(d, stim)
		tr2, err2 := Run(d, stim)
		if err1 != nil || err2 != nil {
			return false
		}
		for c := 0; c < tr1.Len(); c++ {
			v1, _ := tr1.Value(c, "acc")
			v2, _ := tr2.Value(c, "acc")
			if v1 != v2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSimMasking: no signal ever exceeds its declared width, for any
// stimulus.
func TestQuickSimMasking(t *testing.T) {
	d, diags, err := compile.Compile(quickCounterSrc)
	if err != nil || compile.HasErrors(diags) {
		t.Fatal("fixture broken")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stim := make(Stimulus, 16)
		for i := range stim {
			stim[i] = map[string]uint64{
				"rst_n": uint64(rng.Intn(2)),
				"en":    rng.Uint64(), // deliberately over-wide inputs
				"step":  rng.Uint64(),
			}
		}
		tr, err := Run(d, stim)
		if err != nil {
			return false
		}
		for c := 0; c < tr.Len(); c++ {
			for name, sig := range d.Signals {
				v, ok := tr.Value(c, name)
				if !ok {
					continue
				}
				if v&^sig.Mask() != 0 {
					t.Logf("cycle %d: %s = %#x exceeds %d bits", c, name, v, sig.Width)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickResetDominates: whenever reset is asserted at a sample point,
// the register reads zero on the following cycle, for any stimulus.
func TestQuickResetDominates(t *testing.T) {
	d, diags, err := compile.Compile(quickCounterSrc)
	if err != nil || compile.HasErrors(diags) {
		t.Fatal("fixture broken")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stim := make(Stimulus, 16)
		for i := range stim {
			stim[i] = map[string]uint64{
				"rst_n": uint64(rng.Intn(2)),
				"en":    1,
				"step":  uint64(1 + rng.Intn(15)),
			}
		}
		tr, err := Run(d, stim)
		if err != nil {
			return false
		}
		for c := 0; c < tr.Len()-1; c++ {
			rstn, _ := tr.Value(c, "rst_n")
			if rstn == 0 {
				if acc, _ := tr.Value(c+1, "acc"); acc != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func boolToU(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestQuickLanePackDemuxRoundTrip: packing 1..64 stimuli into a lane batch
// and demuxing any lane back must reproduce the original stimulus exactly
// (masked to each input's width), including ragged batches that fill only
// part of the final word.
func TestQuickLanePackDemuxRoundTrip(t *testing.T) {
	d, diags, err := compile.Compile(quickCounterSrc)
	if err != nil || compile.HasErrors(diags) {
		t.Fatal("fixture broken")
	}
	inputs := d.Inputs(false) // all inputs, clock included, mixed widths
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		depth := 1 + rng.Intn(8)
		stims := make([]VecStimulus, n)
		for j := range stims {
			rows := make([][]uint64, depth)
			for c := range rows {
				row := make([]uint64, len(inputs))
				for i := range row {
					row[i] = rng.Uint64() // deliberately unmasked
				}
				rows[c] = row
			}
			stims[j] = VecStimulus{Inputs: inputs, Rows: rows}
		}
		ls, err := PackStimuli(stims)
		if err != nil || ls.N != n || ls.Depth != depth {
			return false
		}
		for j := 0; j < n; j++ {
			back := ls.LaneStimulusAt(j)
			if len(back.Rows) != depth {
				return false
			}
			for c := 0; c < depth; c++ {
				for i, in := range inputs {
					if back.Rows[c][i] != stims[j].Rows[c][i]&in.Mask() {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLanePackRejectsBadBatches: the packer enforces the 1..64 bound
// and identical stimulus shapes across lanes.
func TestQuickLanePackRejectsBadBatches(t *testing.T) {
	d, _, err := compile.Compile(quickCounterSrc)
	if err != nil {
		t.Fatal(err)
	}
	inputs := d.Inputs(true)
	mk := func(depth int) VecStimulus {
		rows := make([][]uint64, depth)
		for c := range rows {
			rows[c] = make([]uint64, len(inputs))
		}
		return VecStimulus{Inputs: inputs, Rows: rows}
	}
	if _, err := PackStimuli(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	big := make([]VecStimulus, 65)
	for i := range big {
		big[i] = mk(4)
	}
	if _, err := PackStimuli(big); err == nil {
		t.Fatal("65-lane batch accepted")
	}
	if _, err := PackStimuli([]VecStimulus{mk(4), mk(5)}); err == nil {
		t.Fatal("mismatched depths accepted")
	}
}
