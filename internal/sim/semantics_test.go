package sim

import (
	"errors"
	"testing"

	"repro/internal/verilog"
)

// runBoth simulates on the compiled plan and the reference interpreter and
// requires them to agree before returning the trace; the semantics
// regression tests below therefore pin both execution paths at once.
func runBoth(t *testing.T, src string, stim Stimulus) *Trace {
	t.Helper()
	d := mustCompile(t, src)
	if PlanOf(d) == nil {
		t.Fatalf("design unexpectedly unplannable")
	}
	tr, err := Run(d, stim)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunReference(mustCompile(t, src), stim)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < tr.Len(); c++ {
		for _, name := range d.Order {
			got, _ := tr.Value(c, name)
			want, _ := ref.Value(c, name)
			if got != want {
				t.Fatalf("plan/reference divergence: cycle %d %s: plan=%#x ref=%#x", c, name, got, want)
			}
		}
	}
	return tr
}

// >>> must sign-extend from the left operand's self-determined width; it
// was previously evaluated identically to logical >>.
func TestAShrSignExtends(t *testing.T) {
	src := `
module ashr (
    input [7:0] a,
    input [3:0] s,
    output [7:0] ar,
    output [7:0] lr
);
    assign ar = a >>> s;
    assign lr = a >> s;
endmodule
`
	cases := []struct {
		a, s, ar, lr uint64
	}{
		{0x80, 2, 0xE0, 0x20}, // negative: high bits fill with sign
		{0x40, 2, 0x10, 0x10}, // positive: identical to logical shift
		{0xFF, 7, 0xFF, 0x01},
		{0x80, 9, 0xFF, 0x00}, // shift >= width saturates to the sign
		{0x7F, 9, 0x00, 0x00},
		{0x00, 3, 0x00, 0x00},
	}
	for _, tc := range cases {
		tr := runBoth(t, src, Stimulus{{"a": tc.a, "s": tc.s}})
		if got, _ := tr.Value(0, "ar"); got != tc.ar {
			t.Errorf("%#x >>> %d = %#x, want %#x", tc.a, tc.s, got, tc.ar)
		}
		if got, _ := tr.Value(0, "lr"); got != tc.lr {
			t.Errorf("%#x >> %d = %#x, want %#x", tc.a, tc.s, got, tc.lr)
		}
	}
}

// Unary minus must be masked to its operand's self-determined width like
// its sibling ~; it previously leaked all 64 borrow bits into wider
// contexts.
func TestUnaryMinusMaskedToOperandWidth(t *testing.T) {
	src := `
module neg (
    input [3:0] a,
    output [7:0] y,
    output lt
);
    assign y = -a;
    assign lt = 8'd200 < -a;
endmodule
`
	tr := runBoth(t, src, Stimulus{{"a": 1}})
	// -4'd1 is 4'hF: widening to 8 bits must not smear the sign.
	if got, _ := tr.Value(0, "y"); got != 0x0F {
		t.Errorf("-4'd1 widened = %#x, want 0x0f", got)
	}
	// 200 < 15 is false; before the fix -a evaluated as 2^64-1 so the
	// comparison was true.
	if got, _ := tr.Value(0, "lt"); got != 0 {
		t.Errorf("200 < -4'd1 = %d, want 0", got)
	}
}

// A nonblocking write that textually follows a blocking write to the same
// signal must win at the edge (program-order commit); the blocking overlay
// used to be folded in afterwards, clobbering it.
func TestSeqCommitProgramOrder(t *testing.T) {
	src := `
module po (
    input clk,
    input [3:0] d,
    output reg [3:0] q
);
    always @(posedge clk) begin
        q = d;
        q <= ~d;
    end
endmodule
`
	tr := runBoth(t, src, Stimulus{{"d": 5}, {"d": 5}})
	if got, _ := tr.Value(1, "q"); got != 0xA {
		t.Errorf("q after edge = %#x, want 0xa (nonblocking write is last in program order)", got)
	}

	// And the mirror image: a blocking write after a nonblocking one wins.
	rev := `
module po2 (
    input clk,
    input [3:0] d,
    output reg [3:0] q
);
    always @(posedge clk) begin
        q <= ~d;
        q = d;
    end
endmodule
`
	tr = runBoth(t, rev, Stimulus{{"d": 5}, {"d": 5}})
	if got, _ := tr.Value(1, "q"); got != 5 {
		t.Errorf("q after edge = %#x, want 0x5 (blocking write is last in program order)", got)
	}
}

// A nonblocking bit write must read-modify-write on top of the same
// block's earlier blocking result, not the stale pre-edge value.
func TestNBABitWriteSeesBlockingOverlay(t *testing.T) {
	src := `
module rmw (
    input clk,
    output reg [7:0] q
);
    always @(posedge clk) begin
        q = 8'h0F;
        q[7] <= 1'b1;
    end
endmodule
`
	tr := runBoth(t, src, Stimulus{{}, {}})
	if got, _ := tr.Value(1, "q"); got != 0x8F {
		t.Errorf("q after edge = %#x, want 0x8f (bit RMW over the blocking result)", got)
	}

	// Slice variant: the nonblocking slice write lands on the blocking
	// full-write's value.
	slice := `
module rmws (
    input clk,
    output reg [7:0] q
);
    always @(posedge clk) begin
        q = 8'hF0;
        q[3:0] <= 4'h5;
    end
endmodule
`
	tr = runBoth(t, slice, Stimulus{{}, {}})
	if got, _ := tr.Value(1, "q"); got != 0xF5 {
		t.Errorf("q after edge = %#x, want 0xf5 (slice RMW over the blocking result)", got)
	}
}

// histEnv is a minimal HistoryEnv for direct evaluator tests.
type histEnv struct {
	vals map[string]uint64
	back int // how many cycles of history exist
}

func (e histEnv) Value(name string) (uint64, bool) { v, ok := e.vals[name]; return v, ok }
func (e histEnv) Width(string) int                 { return 8 }
func (e histEnv) At(offset int) Env {
	if offset > e.back {
		return nil
	}
	return e
}

// $past must reject depths that are zero or would overflow the int history
// offset instead of producing undefined history accesses.
func TestPastDepthValidated(t *testing.T) {
	env := histEnv{vals: map[string]uint64{"x": 7}, back: 4}
	past := func(depth uint64) verilog.Expr {
		return &verilog.Call{Name: "$past", Args: []verilog.Expr{
			&verilog.Ident{Name: "x"},
			&verilog.Number{Value: depth},
		}}
	}
	if _, err := Eval(past(1), env); err != nil {
		t.Errorf("$past(x, 1): unexpected error %v", err)
	}
	var evalErr *EvalError
	if _, err := Eval(past(0), env); err == nil || !errors.As(err, &evalErr) {
		t.Errorf("$past(x, 0): want EvalError, got %v", err)
	}
	// A "negative" depth arrives as a huge uint64 after two's-complement
	// wrapping; it must be rejected, not converted to int.
	if _, err := Eval(past(^uint64(0)), env); err == nil || !errors.As(err, &evalErr) {
		t.Errorf("$past(x, -1): want EvalError, got %v", err)
	}
	if _, err := Eval(past(uint64(maxPastDepth)+1), env); err == nil || !errors.As(err, &evalErr) {
		t.Errorf("$past(x, maxPastDepth+1): want EvalError, got %v", err)
	}
}

// The compiled plan must validate $past depths identically.
func TestPastDepthValidatedCompiled(t *testing.T) {
	src := `
module pd (
    input clk,
    input [3:0] x,
    output [3:0] y
);
    assign y = x;
    ap: assert property (@(posedge clk) y == $past(y, 0));
endmodule
`
	d := mustCompile(t, src)
	tr, err := Run(d, Stimulus{{"x": 1}, {"x": 2}})
	if err != nil {
		t.Fatal(err)
	}
	term := d.Asserts[0].Seq.Consequent[0].Expr
	fn := tr.CompileExpr(term)
	var evalErr *EvalError
	if _, err := fn(1); err == nil || !errors.As(err, &evalErr) {
		t.Errorf("compiled $past(y, 0): want EvalError, got %v", err)
	}
}
