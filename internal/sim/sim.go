package sim

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/verilog"
)

// maxCombIterations bounds the combinational settle loop; exceeding it means
// a combinational cycle.
const maxCombIterations = 64

// Simulator advances an elaborated design one clock cycle at a time. It is
// the reference interpreter: it re-walks the AST every cycle with name-keyed
// state, which makes it slow but easy to audit. Run uses the compiled
// slot-indexed plan (see plan.go) and falls back to this interpreter only
// when a design contains a construct the planner cannot lower; the two are
// held byte-identical by the differential tests.
//
// State is kept as two planes: vals (the known bit values) and unks (the
// unknown-bit masks, always empty in TwoState mode). Expressions evaluate
// through Eval in TwoState mode and Eval4 in FourState mode.
type Simulator struct {
	design *compile.Design
	mode   Mode
	vals   map[string]uint64
	unks   map[string]uint64 // nil in TwoState mode
	clock  string
	reset  compile.ResetInfo
	// branches accumulates which polarity of each if statement executed
	// (nil unless RecordBranches enabled it). Sequential blocks record
	// directly; combinational blocks record through branchScratch, which
	// settle merges only from its final, converged iteration so transient
	// polarities taken while the fixpoint was still moving are not counted.
	branches      BranchCoverage
	branchScratch map[verilog.Pos]uint8
}

// New creates a two-state simulator with registers at their declared
// initial values (zero by default) and combinational logic settled.
func New(d *compile.Design) (*Simulator, error) { return NewMode(d, TwoState) }

// NewMode creates a simulator in the given value domain. In FourState mode
// every signal starts unknown except registers with declared initialisers
// (whose x/z literal bits stay unknown); combinational logic is settled
// against that state, so an undriven or unreset register reads as x until
// its first assignment.
func NewMode(d *compile.Design, mode Mode) (*Simulator, error) {
	s := &Simulator{
		design: d,
		mode:   mode,
		vals:   make(map[string]uint64, len(d.Signals)),
		clock:  d.ClockName(),
		reset:  d.Reset(),
	}
	if mode == FourState {
		s.unks = make(map[string]uint64, len(d.Signals))
		for _, name := range d.Order {
			s.unks[name] = d.Signals[name].Mask()
		}
	}
	for name, init := range d.RegInit {
		if sig := d.Signals[name]; sig != nil {
			s.vals[name] = init & sig.Mask()
			if s.unks != nil {
				s.unks[name] = d.RegInitX[name] & sig.Mask()
			}
		}
	}
	if err := s.settle(); err != nil {
		return nil, err
	}
	return s, nil
}

// Design returns the simulated design.
func (s *Simulator) Design() *compile.Design { return s.design }

// Mode returns the simulator's value domain.
func (s *Simulator) Mode() Mode { return s.mode }

// SetInput drives an input port for the upcoming cycle. Driven values are
// fully known.
func (s *Simulator) SetInput(name string, v uint64) error {
	sig := s.design.Signals[name]
	if sig == nil || sig.Kind != compile.SigInput {
		return fmt.Errorf("sim: %q is not an input", name)
	}
	s.setVal(name, known(v&sig.Mask()))
	return nil
}

// Get returns the current value of any signal (the known-bit plane; unknown
// bits read as 0).
func (s *Simulator) Get(name string) (uint64, bool) {
	v, ok := s.get4(name)
	return v.Val, ok
}

// Get4 returns the current four-state value of any signal.
func (s *Simulator) Get4(name string) (V4, bool) { return s.get4(name) }

func (s *Simulator) get4(name string) (V4, bool) {
	sig := s.design.Signals[name]
	if sig == nil {
		if v, ok := s.design.Params[name]; ok {
			return known(v), true
		}
		return V4{}, false
	}
	v := V4{Val: s.vals[name]}
	if s.unks != nil {
		v.Unk = s.unks[name]
	}
	return v, true
}

func (s *Simulator) setVal(name string, v V4) {
	s.vals[name] = v.Val
	if s.unks != nil {
		s.unks[name] = v.Unk
	}
}

// eval evaluates an expression in the simulator's value domain.
func (s *Simulator) eval(e verilog.Expr, env simEnv) (V4, error) {
	if s.mode == FourState {
		return Eval4(e, env)
	}
	v, err := Eval(e, env)
	return known(v), err
}

// simEnv adapts the simulator's value planes (with an optional overlay for
// blocking assignments) to the evaluator's Env/Env4 interfaces.
type simEnv struct {
	s       *Simulator
	overlay map[string]V4
}

// Value implements Env.
func (e simEnv) Value(name string) (uint64, bool) {
	v, ok := e.Value4(name)
	return v.Val, ok
}

// Value4 implements Env4.
func (e simEnv) Value4(name string) (V4, bool) {
	if e.overlay != nil {
		if v, ok := e.overlay[name]; ok {
			return v, true
		}
	}
	return e.s.get4(name)
}

// Width implements Env.
func (e simEnv) Width(name string) int {
	if sig := e.s.design.Signals[name]; sig != nil {
		return sig.Width
	}
	return 0
}

// settle evaluates continuous assignments and combinational always blocks to
// a fixpoint.
func (s *Simulator) settle() error {
	env := simEnv{s: s}
	for iter := 0; iter < maxCombIterations; iter++ {
		if s.branchScratch != nil {
			clear(s.branchScratch)
		}
		changed := false
		for _, as := range s.design.Assigns {
			v, err := s.eval(as.RHS, env)
			if err != nil {
				return err
			}
			if err := s.storeInto(as.LHS, v, env,
				func(name string) V4 { cur, _ := s.get4(name); return cur },
				func(name string, nv V4) {
					if cur, _ := s.get4(name); cur != nv {
						s.setVal(name, nv)
						changed = true
					}
				}); err != nil {
				return err
			}
		}
		for _, al := range s.design.CombAlways {
			updates := map[string]V4{}
			if err := s.exec(al.Body, updates); err != nil {
				return err
			}
			for name, v := range updates {
				if cur, _ := s.get4(name); cur != v {
					s.setVal(name, v)
					changed = true
				}
			}
		}
		if !changed {
			for pos, bits := range s.branchScratch {
				s.branches[pos] |= bits
			}
			return nil
		}
	}
	return fmt.Errorf("sim: combinational logic did not settle (cycle?)")
}

// storeInto decomposes an assignment of v to lhs into per-signal effects,
// masked to each signal's width. base resolves the current value of a
// signal for read-modify-write bit/slice targets; env evaluates dynamic
// index/bound expressions (and therefore sees the caller's blocking
// overlay); apply receives each (signal, value) effect in program order.
// In FourState mode a write through an unknown index or bound is a no-op
// (IEEE 1364 §9.2.2: the assignment has no effect).
func (s *Simulator) storeInto(lhs verilog.Expr, v V4, env simEnv, base func(string) V4, apply func(string, V4)) error {
	switch x := lhs.(type) {
	case *verilog.Ident:
		sig := s.design.Signals[x.Name]
		if sig == nil {
			return fmt.Errorf("sim: assignment to unknown signal %q", x.Name)
		}
		apply(x.Name, v.maskV(sig.Mask()).norm())
		return nil
	case *verilog.Index:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return fmt.Errorf("sim: unsupported assignment target")
		}
		idx, err := s.eval(x.Idx, env)
		if err != nil {
			return err
		}
		if idx.Unk != 0 {
			return nil // write at an unknown index: no effect
		}
		cur := base(id.Name)
		sh := idx.Val & 63
		bit := uint64(1) << sh
		nv := V4{
			Val: (cur.Val &^ bit) | ((v.Val & 1) << sh),
			Unk: (cur.Unk &^ bit) | ((v.Unk & 1) << sh),
		}
		return s.storeInto(id, nv, env, base, apply)
	case *verilog.Slice:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return fmt.Errorf("sim: unsupported assignment target")
		}
		hi, err := s.eval(x.Hi, env)
		if err != nil {
			return err
		}
		lo, err := s.eval(x.Lo, env)
		if err != nil {
			return err
		}
		if hi.Unk|lo.Unk != 0 {
			return nil // write at unknown bounds: no effect
		}
		if lo.Val > hi.Val {
			return fmt.Errorf("sim: invalid slice target")
		}
		cur := base(id.Name)
		m := maskFor(int(hi.Val-lo.Val)+1) << lo.Val
		nv := V4{
			Val: (cur.Val &^ m) | ((v.Val << lo.Val) & m),
			Unk: (cur.Unk &^ m) | ((v.Unk << lo.Val) & m),
		}
		return s.storeInto(id, nv, env, base, apply)
	case *verilog.Concat:
		// {a, b} = v assigns slices of v left to right.
		total := 0
		widths := make([]int, len(x.Elems))
		for i, el := range x.Elems {
			widths[i] = ExprWidth(el, env)
			total += widths[i]
		}
		shift := total
		for i, el := range x.Elems {
			shift -= widths[i]
			part := V4{
				Val: (v.Val >> uint(shift)) & maskFor(widths[i]),
				Unk: (v.Unk >> uint(shift)) & maskFor(widths[i]),
			}
			if err := s.storeInto(el, part, env, base, apply); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("sim: unsupported assignment target %T", lhs)
}

// exec runs a statement with blocking semantics into the overlay map
// `updates` acting as both blocking overlay and result set. Used for
// combinational always blocks.
func (s *Simulator) exec(stmt verilog.Stmt, updates map[string]V4) error {
	env := simEnv{s: s, overlay: updates}
	switch x := stmt.(type) {
	case *verilog.Block:
		for _, sub := range x.Stmts {
			if err := s.exec(sub, updates); err != nil {
				return err
			}
		}
		return nil
	case *verilog.Blocking, *verilog.NonBlocking:
		var lhs, rhs verilog.Expr
		if b, ok := x.(*verilog.Blocking); ok {
			lhs, rhs = b.LHS, b.RHS
		} else {
			nb := x.(*verilog.NonBlocking)
			lhs, rhs = nb.LHS, nb.RHS
		}
		v, err := s.eval(rhs, env)
		if err != nil {
			return err
		}
		return s.storeInto(lhs, v, env,
			func(name string) V4 {
				if pending, ok := updates[name]; ok {
					return pending
				}
				cur, _ := s.get4(name)
				return cur
			},
			func(name string, nv V4) { updates[name] = nv })
	case *verilog.If:
		c, err := s.eval(x.Cond, env)
		if err != nil {
			return err
		}
		if s.branchScratch != nil {
			s.branchScratch[x.Pos] |= branchBit(c)
		}
		// An x condition is treated as false (IEEE 1364 §9.4).
		if c.IsTrue() {
			return s.exec(x.Then, updates)
		}
		if x.Else != nil {
			return s.exec(x.Else, updates)
		}
		return nil
	case *verilog.Case:
		return s.execCase(x, updates, env)
	}
	return nil
}

// caseMatches reports whether a case label selects the subject. TwoState
// compares the known planes (the historical behaviour, where x/z label
// bits decoded to 0); FourState uses case equality over both planes, so an
// x label matches exactly an x subject bit.
func (s *Simulator) caseMatches(label, subj V4) bool {
	if s.mode == FourState {
		return label == subj
	}
	return label.Val == subj.Val
}

func (s *Simulator) execCase(x *verilog.Case, updates map[string]V4, env simEnv) error {
	subj, err := s.eval(x.Subject, env)
	if err != nil {
		return err
	}
	var deflt verilog.Stmt
	for _, item := range x.Items {
		if item.Exprs == nil {
			deflt = item.Body
			continue
		}
		for _, le := range item.Exprs {
			lv, err := s.eval(le, env)
			if err != nil {
				return err
			}
			if s.caseMatches(lv, subj) {
				return s.exec(item.Body, updates)
			}
		}
	}
	if deflt != nil {
		return s.exec(deflt, updates)
	}
	return nil
}

// Step advances one clock cycle: combinational logic is settled against the
// current inputs, sequential blocks execute at the clock edge, nonblocking
// updates commit, and combinational logic settles again.
func (s *Simulator) Step() error {
	if err := s.settle(); err != nil {
		return err
	}
	return s.edge(firedAll)
}

// Settle re-evaluates combinational logic against the current inputs without
// advancing the clock. Callers that need a preponed sample (the value set
// just before the clock edge) call Settle, read Snapshot, then Edge.
func (s *Simulator) Settle() error { return s.settle() }

// Edge executes the clock edge only: sequential blocks run against the
// current (pre-edge) values, nonblocking updates commit, and combinational
// logic settles. On a multi-clock design Edge ticks every domain at once;
// callers that advance domains independently use EdgeFired.
func (s *Simulator) Edge() error { return s.edge(firedAll) }

// EdgeFired executes the clock edge for the domains selected by fired (bit
// k = design.Domains()[k] ticked). Single-domain designs ignore the mask.
func (s *Simulator) EdgeFired(fired uint64) error { return s.edge(fired) }

// edge runs the selected sequential blocks against pre-edge values and
// commits the resulting writes. Within one block, writes to the same signal
// commit in program order: the last assignment wins at the edge whether it
// was blocking or nonblocking (blocking writes are additionally visible to
// later reads in their own block).
func (s *Simulator) edge(fired uint64) error {
	commit := map[string]V4{}
	multi := s.design.MultiClock()
	for i, al := range s.design.SeqAlways {
		if multi && fired>>uint(s.design.DomainOf[i])&1 == 0 {
			continue
		}
		blocking := map[string]V4{}
		if err := s.execSeq(al.Body, commit, blocking); err != nil {
			return err
		}
	}
	for name, v := range commit {
		if sig := s.design.Signals[name]; sig != nil {
			s.setVal(name, v)
		}
	}
	return s.settle()
}

// execSeq runs a sequential block body. Reads see pre-edge values overlaid
// with this block's blocking assignments; every write lands in commit in
// program order, and blocking writes additionally update the read overlay.
func (s *Simulator) execSeq(stmt verilog.Stmt, commit, blocking map[string]V4) error {
	env := simEnv{s: s, overlay: blocking}
	switch x := stmt.(type) {
	case *verilog.Block:
		for _, sub := range x.Stmts {
			if err := s.execSeq(sub, commit, blocking); err != nil {
				return err
			}
		}
		return nil
	case *verilog.NonBlocking:
		v, err := s.eval(x.RHS, env)
		if err != nil {
			return err
		}
		// Bit/slice RMW reads the latest pending post-edge value, so an
		// earlier blocking (or nonblocking) write in this edge is not lost.
		return s.storeInto(x.LHS, v, env,
			func(name string) V4 {
				if pending, ok := commit[name]; ok {
					return pending
				}
				if pending, ok := blocking[name]; ok {
					return pending
				}
				cur, _ := s.get4(name)
				return cur
			},
			func(name string, nv V4) { commit[name] = nv })
	case *verilog.Blocking:
		v, err := s.eval(x.RHS, env)
		if err != nil {
			return err
		}
		return s.storeInto(x.LHS, v, env,
			func(name string) V4 {
				if pending, ok := blocking[name]; ok {
					return pending
				}
				cur, _ := s.get4(name)
				return cur
			},
			func(name string, nv V4) {
				blocking[name] = nv
				commit[name] = nv
			})
	case *verilog.If:
		c, err := s.eval(x.Cond, env)
		if err != nil {
			return err
		}
		if s.branches != nil {
			// Pre-edge values are stable, so sequential polarities are
			// recorded directly (no scratch/merge needed).
			s.branches[x.Pos] |= branchBit(c)
		}
		if c.IsTrue() {
			return s.execSeq(x.Then, commit, blocking)
		}
		if x.Else != nil {
			return s.execSeq(x.Else, commit, blocking)
		}
		return nil
	case *verilog.Case:
		subj, err := s.eval(x.Subject, env)
		if err != nil {
			return err
		}
		var deflt verilog.Stmt
		for _, item := range x.Items {
			if item.Exprs == nil {
				deflt = item.Body
				continue
			}
			for _, le := range item.Exprs {
				lv, err := s.eval(le, env)
				if err != nil {
					return err
				}
				if s.caseMatches(lv, subj) {
					return s.execSeq(item.Body, commit, blocking)
				}
			}
		}
		if deflt != nil {
			return s.execSeq(deflt, commit, blocking)
		}
		return nil
	}
	return nil
}

// Snapshot copies the current value of every signal, keyed by name (known
// plane only; unknown bits read as 0).
func (s *Simulator) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.design.Order))
	for _, name := range s.design.Order {
		out[name] = s.vals[name]
	}
	return out
}

// snapshotRow copies the current known-bit values into a dense slot vector.
func (s *Simulator) snapshotRow() []uint64 {
	row := make([]uint64, len(s.design.Order))
	for _, name := range s.design.Order {
		row[s.design.Signals[name].Slot] = s.vals[name]
	}
	return row
}

// snapshotUnkRow copies the current unknown-bit masks into a dense slot
// vector (nil when the simulator is two-state).
func (s *Simulator) snapshotUnkRow() []uint64 {
	if s.unks == nil {
		return nil
	}
	row := make([]uint64, len(s.design.Order))
	for _, name := range s.design.Order {
		row[s.design.Signals[name].Slot] = s.unks[name]
	}
	return row
}
