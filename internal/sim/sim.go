package sim

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/verilog"
)

// maxCombIterations bounds the combinational settle loop; exceeding it means
// a combinational cycle.
const maxCombIterations = 64

// Simulator advances an elaborated design one clock cycle at a time. It is
// the reference interpreter: it re-walks the AST every cycle with name-keyed
// state, which makes it slow but easy to audit. Run uses the compiled
// slot-indexed plan (see plan.go) and falls back to this interpreter only
// when a design contains a construct the planner cannot lower; the two are
// held byte-identical by the differential tests.
type Simulator struct {
	design *compile.Design
	vals   map[string]uint64
	clock  string
	reset  compile.ResetInfo
}

// New creates a simulator with registers at their declared initial values
// (zero by default) and combinational logic settled.
func New(d *compile.Design) (*Simulator, error) {
	s := &Simulator{
		design: d,
		vals:   make(map[string]uint64, len(d.Signals)),
		clock:  d.ClockName(),
		reset:  d.Reset(),
	}
	for name, init := range d.RegInit {
		if sig := d.Signals[name]; sig != nil {
			s.vals[name] = init & sig.Mask()
		}
	}
	if err := s.settle(); err != nil {
		return nil, err
	}
	return s, nil
}

// Design returns the simulated design.
func (s *Simulator) Design() *compile.Design { return s.design }

// SetInput drives an input port for the upcoming cycle.
func (s *Simulator) SetInput(name string, v uint64) error {
	sig := s.design.Signals[name]
	if sig == nil || sig.Kind != compile.SigInput {
		return fmt.Errorf("sim: %q is not an input", name)
	}
	s.vals[name] = v & sig.Mask()
	return nil
}

// Get returns the current value of any signal.
func (s *Simulator) Get(name string) (uint64, bool) {
	sig := s.design.Signals[name]
	if sig == nil {
		if v, ok := s.design.Params[name]; ok {
			return v, true
		}
		return 0, false
	}
	return s.vals[name], true
}

// simEnv adapts the simulator's value map (with an optional overlay for
// blocking assignments) to the evaluator's Env interface.
type simEnv struct {
	s       *Simulator
	overlay map[string]uint64
}

// Value implements Env.
func (e simEnv) Value(name string) (uint64, bool) {
	if e.overlay != nil {
		if v, ok := e.overlay[name]; ok {
			return v, true
		}
	}
	return e.s.Get(name)
}

// Width implements Env.
func (e simEnv) Width(name string) int {
	if sig := e.s.design.Signals[name]; sig != nil {
		return sig.Width
	}
	return 0
}

// settle evaluates continuous assignments and combinational always blocks to
// a fixpoint.
func (s *Simulator) settle() error {
	env := simEnv{s: s}
	for iter := 0; iter < maxCombIterations; iter++ {
		changed := false
		for _, as := range s.design.Assigns {
			v, err := Eval(as.RHS, env)
			if err != nil {
				return err
			}
			if err := s.storeInto(as.LHS, v, env,
				func(name string) uint64 { return s.vals[name] },
				func(name string, nv uint64) {
					if s.vals[name] != nv {
						s.vals[name] = nv
						changed = true
					}
				}); err != nil {
				return err
			}
		}
		for _, al := range s.design.CombAlways {
			updates := map[string]uint64{}
			if err := s.exec(al.Body, updates); err != nil {
				return err
			}
			for name, v := range updates {
				if s.vals[name] != v {
					s.vals[name] = v
					changed = true
				}
			}
		}
		if !changed {
			return nil
		}
	}
	return fmt.Errorf("sim: combinational logic did not settle (cycle?)")
}

// storeInto decomposes an assignment of v to lhs into per-signal effects,
// masked to each signal's width. base resolves the current value of a
// signal for read-modify-write bit/slice targets; env evaluates dynamic
// index/bound expressions (and therefore sees the caller's blocking
// overlay); apply receives each (signal, value) effect in program order.
func (s *Simulator) storeInto(lhs verilog.Expr, v uint64, env simEnv, base func(string) uint64, apply func(string, uint64)) error {
	switch x := lhs.(type) {
	case *verilog.Ident:
		sig := s.design.Signals[x.Name]
		if sig == nil {
			return fmt.Errorf("sim: assignment to unknown signal %q", x.Name)
		}
		apply(x.Name, v&sig.Mask())
		return nil
	case *verilog.Index:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return fmt.Errorf("sim: unsupported assignment target")
		}
		idx, err := Eval(x.Idx, env)
		if err != nil {
			return err
		}
		cur := base(id.Name)
		bit := uint64(1) << (idx & 63)
		nv := (cur &^ bit) | ((v & 1) << (idx & 63))
		return s.storeInto(id, nv, env, base, apply)
	case *verilog.Slice:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return fmt.Errorf("sim: unsupported assignment target")
		}
		hi, err := Eval(x.Hi, env)
		if err != nil {
			return err
		}
		lo, err := Eval(x.Lo, env)
		if err != nil {
			return err
		}
		if lo > hi {
			return fmt.Errorf("sim: invalid slice target")
		}
		cur := base(id.Name)
		m := maskFor(int(hi-lo)+1) << lo
		nv := (cur &^ m) | ((v << lo) & m)
		return s.storeInto(id, nv, env, base, apply)
	case *verilog.Concat:
		// {a, b} = v assigns slices of v left to right.
		total := 0
		widths := make([]int, len(x.Elems))
		for i, el := range x.Elems {
			widths[i] = ExprWidth(el, env)
			total += widths[i]
		}
		shift := total
		for i, el := range x.Elems {
			shift -= widths[i]
			part := (v >> uint(shift)) & maskFor(widths[i])
			if err := s.storeInto(el, part, env, base, apply); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("sim: unsupported assignment target %T", lhs)
}

// exec runs a statement with blocking semantics into the overlay map
// `updates` acting as both blocking overlay and result set. Used for
// combinational always blocks.
func (s *Simulator) exec(stmt verilog.Stmt, updates map[string]uint64) error {
	env := simEnv{s: s, overlay: updates}
	switch x := stmt.(type) {
	case *verilog.Block:
		for _, sub := range x.Stmts {
			if err := s.exec(sub, updates); err != nil {
				return err
			}
		}
		return nil
	case *verilog.Blocking, *verilog.NonBlocking:
		var lhs, rhs verilog.Expr
		if b, ok := x.(*verilog.Blocking); ok {
			lhs, rhs = b.LHS, b.RHS
		} else {
			nb := x.(*verilog.NonBlocking)
			lhs, rhs = nb.LHS, nb.RHS
		}
		v, err := Eval(rhs, env)
		if err != nil {
			return err
		}
		return s.storeInto(lhs, v, env,
			func(name string) uint64 {
				if pending, ok := updates[name]; ok {
					return pending
				}
				return s.vals[name]
			},
			func(name string, nv uint64) { updates[name] = nv })
	case *verilog.If:
		c, err := Eval(x.Cond, env)
		if err != nil {
			return err
		}
		if c != 0 {
			return s.exec(x.Then, updates)
		}
		if x.Else != nil {
			return s.exec(x.Else, updates)
		}
		return nil
	case *verilog.Case:
		return s.execCase(x, updates, env)
	}
	return nil
}

func (s *Simulator) execCase(x *verilog.Case, updates map[string]uint64, env simEnv) error {
	subj, err := Eval(x.Subject, env)
	if err != nil {
		return err
	}
	var deflt verilog.Stmt
	for _, item := range x.Items {
		if item.Exprs == nil {
			deflt = item.Body
			continue
		}
		for _, le := range item.Exprs {
			lv, err := Eval(le, env)
			if err != nil {
				return err
			}
			if lv == subj {
				return s.exec(item.Body, updates)
			}
		}
	}
	if deflt != nil {
		return s.exec(deflt, updates)
	}
	return nil
}

// Step advances one clock cycle: combinational logic is settled against the
// current inputs, sequential blocks execute at the clock edge, nonblocking
// updates commit, and combinational logic settles again.
func (s *Simulator) Step() error {
	if err := s.settle(); err != nil {
		return err
	}
	return s.edge()
}

// Settle re-evaluates combinational logic against the current inputs without
// advancing the clock. Callers that need a preponed sample (the value set
// just before the clock edge) call Settle, read Snapshot, then Edge.
func (s *Simulator) Settle() error { return s.settle() }

// Edge executes the clock edge only: sequential blocks run against the
// current (pre-edge) values, nonblocking updates commit, and combinational
// logic settles.
func (s *Simulator) Edge() error { return s.edge() }

// edge runs every sequential block against pre-edge values and commits the
// resulting writes. Within one block, writes to the same signal commit in
// program order: the last assignment wins at the edge whether it was
// blocking or nonblocking (blocking writes are additionally visible to
// later reads in their own block).
func (s *Simulator) edge() error {
	commit := map[string]uint64{}
	for _, al := range s.design.SeqAlways {
		blocking := map[string]uint64{}
		if err := s.execSeq(al.Body, commit, blocking); err != nil {
			return err
		}
	}
	for name, v := range commit {
		if sig := s.design.Signals[name]; sig != nil {
			s.vals[name] = v
		}
	}
	return s.settle()
}

// execSeq runs a sequential block body. Reads see pre-edge values overlaid
// with this block's blocking assignments; every write lands in commit in
// program order, and blocking writes additionally update the read overlay.
func (s *Simulator) execSeq(stmt verilog.Stmt, commit, blocking map[string]uint64) error {
	env := simEnv{s: s, overlay: blocking}
	switch x := stmt.(type) {
	case *verilog.Block:
		for _, sub := range x.Stmts {
			if err := s.execSeq(sub, commit, blocking); err != nil {
				return err
			}
		}
		return nil
	case *verilog.NonBlocking:
		v, err := Eval(x.RHS, env)
		if err != nil {
			return err
		}
		// Bit/slice RMW reads the latest pending post-edge value, so an
		// earlier blocking (or nonblocking) write in this edge is not lost.
		return s.storeInto(x.LHS, v, env,
			func(name string) uint64 {
				if pending, ok := commit[name]; ok {
					return pending
				}
				if pending, ok := blocking[name]; ok {
					return pending
				}
				return s.vals[name]
			},
			func(name string, nv uint64) { commit[name] = nv })
	case *verilog.Blocking:
		v, err := Eval(x.RHS, env)
		if err != nil {
			return err
		}
		return s.storeInto(x.LHS, v, env,
			func(name string) uint64 {
				if pending, ok := blocking[name]; ok {
					return pending
				}
				return s.vals[name]
			},
			func(name string, nv uint64) {
				blocking[name] = nv
				commit[name] = nv
			})
	case *verilog.If:
		c, err := Eval(x.Cond, env)
		if err != nil {
			return err
		}
		if c != 0 {
			return s.execSeq(x.Then, commit, blocking)
		}
		if x.Else != nil {
			return s.execSeq(x.Else, commit, blocking)
		}
		return nil
	case *verilog.Case:
		subj, err := Eval(x.Subject, env)
		if err != nil {
			return err
		}
		var deflt verilog.Stmt
		for _, item := range x.Items {
			if item.Exprs == nil {
				deflt = item.Body
				continue
			}
			for _, le := range item.Exprs {
				lv, err := Eval(le, env)
				if err != nil {
					return err
				}
				if lv == subj {
					return s.execSeq(item.Body, commit, blocking)
				}
			}
		}
		if deflt != nil {
			return s.execSeq(deflt, commit, blocking)
		}
		return nil
	}
	return nil
}

// Snapshot copies the current value of every signal, keyed by name.
func (s *Simulator) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.design.Order))
	for _, name := range s.design.Order {
		out[name] = s.vals[name]
	}
	return out
}

// snapshotRow copies the current values into a dense slot vector.
func (s *Simulator) snapshotRow() []uint64 {
	row := make([]uint64, len(s.design.Order))
	for _, name := range s.design.Order {
		row[s.design.Signals[name].Slot] = s.vals[name]
	}
	return row
}
