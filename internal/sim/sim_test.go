package sim

import (
	"strings"
	"testing"

	"repro/internal/compile"
)

func mustCompile(t *testing.T, src string) *compile.Design {
	t.Helper()
	d, diags, err := compile.Compile(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if compile.HasErrors(diags) {
		t.Fatalf("compile errors:\n%s", compile.FormatDiags(diags))
	}
	return d
}

const counterSrc = `
module counter (
    input clk,
    input rst_n,
    input en,
    output reg [3:0] count,
    output wrap
);
    parameter MAX = 9;
    assign wrap = count == MAX;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) count <= 0;
        else if (en) begin
            if (wrap) count <= 0;
            else count <= count + 1;
        end
    end
endmodule
`

func TestCounterBasic(t *testing.T) {
	d := mustCompile(t, counterSrc)
	stim := Stimulus{
		{"rst_n": 0, "en": 0},
		{"rst_n": 1, "en": 1},
	}
	for i := 0; i < 12; i++ {
		stim = append(stim, map[string]uint64{"rst_n": 1, "en": 1})
	}
	tr, err := Run(d, stim)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle 0: reset asserted, count samples 0. After reset deasserts the
	// counter increments once per enabled cycle and wraps at MAX=9.
	wantCount := []uint64{0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2}
	for i, want := range wantCount {
		got, ok := tr.Value(i, "count")
		if !ok || got != want {
			t.Errorf("cycle %d: count = %d (ok=%v), want %d", i, got, ok, want)
		}
	}
	// wrap must be high exactly when count == 9.
	for i := range wantCount {
		count, _ := tr.Value(i, "count")
		wrap, _ := tr.Value(i, "wrap")
		want := uint64(0)
		if count == 9 {
			want = 1
		}
		if wrap != want {
			t.Errorf("cycle %d: wrap = %d with count %d", i, wrap, count)
		}
	}
}

func TestEnableGating(t *testing.T) {
	d := mustCompile(t, counterSrc)
	stim := Stimulus{
		{"rst_n": 0, "en": 0},
		{"rst_n": 1, "en": 1},
		{"rst_n": 1, "en": 0},
		{"rst_n": 1, "en": 0},
		{"rst_n": 1, "en": 1},
		{"rst_n": 1, "en": 1},
	}
	tr, err := Run(d, stim)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 0, 1, 1, 1, 2}
	for i, w := range want {
		got, _ := tr.Value(i, "count")
		if got != w {
			t.Errorf("cycle %d: count = %d, want %d", i, got, w)
		}
	}
}

func TestMidRunReset(t *testing.T) {
	d := mustCompile(t, counterSrc)
	stim := Stimulus{
		{"rst_n": 1, "en": 1},
		{"rst_n": 1, "en": 1},
		{"rst_n": 1, "en": 1},
		{"rst_n": 0, "en": 1}, // async reset pulse
		{"rst_n": 1, "en": 1},
	}
	tr, err := Run(d, stim)
	if err != nil {
		t.Fatal(err)
	}
	got3, _ := tr.Value(4, "count") // cycle after reset: sampled 0
	if got3 != 0 {
		t.Errorf("count after reset = %d, want 0", got3)
	}
}

// The Fig. 1 accumulator: accumulates 4 inputs, then pulses valid_out.
const accuSrc = `
module accu (
    input clk,
    input rst_n,
    input [7:0] in,
    input valid_in,
    output reg valid_out,
    output reg [9:0] data_out
);
    wire end_cnt;
    reg [1:0] count;
    assign end_cnt = valid_in && count == 2'd3;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) count <= 0;
        else if (valid_in) count <= count + 1;
    end
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) valid_out <= 0;
        else if (end_cnt) valid_out <= 1;
        else valid_out <= 0;
    end
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) data_out <= 0;
        else if (valid_in) data_out <= data_out + in;
    end
endmodule
`

func TestAccu(t *testing.T) {
	d := mustCompile(t, accuSrc)
	stim := Stimulus{
		{"rst_n": 0, "in": 0, "valid_in": 0},
		{"rst_n": 1, "in": 10, "valid_in": 1},
		{"rst_n": 1, "in": 20, "valid_in": 1},
		{"rst_n": 1, "in": 30, "valid_in": 1},
		{"rst_n": 1, "in": 40, "valid_in": 1},
		{"rst_n": 1, "in": 0, "valid_in": 0},
	}
	tr, err := Run(d, stim)
	if err != nil {
		t.Fatal(err)
	}
	// end_cnt rises in cycle 4 (count==3 && valid_in); valid_out pulses in
	// cycle 5's sample; data_out totals 100.
	if v, _ := tr.Value(4, "end_cnt"); v != 1 {
		t.Errorf("end_cnt at cycle 4 = %d, want 1", v)
	}
	if v, _ := tr.Value(5, "valid_out"); v != 1 {
		t.Errorf("valid_out at cycle 5 = %d, want 1", v)
	}
	if v, _ := tr.Value(5, "data_out"); v != 100 {
		t.Errorf("data_out at cycle 5 = %d, want 100", v)
	}
}

func TestBlockingVsNonblocking(t *testing.T) {
	// Classic shift register: with NBAs both stages move together; with
	// blocking assignments the value skips through in one cycle.
	nbSrc := `
module shift (
    input clk,
    input d,
    output reg q1,
    output reg q2
);
    always @(posedge clk) begin
        q1 <= d;
        q2 <= q1;
    end
endmodule
`
	bSrc := strings.ReplaceAll(nbSrc, "<=", "=")
	dNB := mustCompile(t, nbSrc)
	dB := mustCompile(t, bSrc)
	stim := Stimulus{{"d": 1}, {"d": 0}, {"d": 0}}

	trNB, err := Run(dNB, stim)
	if err != nil {
		t.Fatal(err)
	}
	// NBA: q2 sees the old q1, so the 1 arrives at q2 one cycle after q1.
	if v, _ := trNB.Value(1, "q1"); v != 1 {
		t.Errorf("NBA q1 cycle1 = %d, want 1", v)
	}
	if v, _ := trNB.Value(1, "q2"); v != 0 {
		t.Errorf("NBA q2 cycle1 = %d, want 0", v)
	}
	if v, _ := trNB.Value(2, "q2"); v != 1 {
		t.Errorf("NBA q2 cycle2 = %d, want 1", v)
	}

	trB, err := Run(dB, stim)
	if err != nil {
		t.Fatal(err)
	}
	// Blocking: q2 = q1 reads the just-written q1, so both update together.
	if v, _ := trB.Value(1, "q2"); v != 1 {
		t.Errorf("blocking q2 cycle1 = %d, want 1", v)
	}
}

func TestCombAlwaysCase(t *testing.T) {
	src := `
module dec (
    input [1:0] sel,
    output reg [3:0] y
);
    always @(*) begin
        case (sel)
            2'd0: y = 4'b0001;
            2'd1: y = 4'b0010;
            2'd2: y = 4'b0100;
            default: y = 4'b1000;
        endcase
    end
endmodule
`
	d := mustCompile(t, src)
	for sel, want := range map[uint64]uint64{0: 1, 1: 2, 2: 4, 3: 8} {
		tr, err := Run(d, Stimulus{{"sel": sel}})
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := tr.Value(0, "y"); got != want {
			t.Errorf("sel=%d: y = %d, want %d", sel, got, want)
		}
	}
}

func TestCombLoopDetected(t *testing.T) {
	src := `
module osc (
    input a,
    output w
);
    wire x;
    assign x = ~x | a;
    assign w = x;
endmodule
`
	d := mustCompile(t, src)
	if _, err := Run(d, Stimulus{{"a": 0}}); err == nil {
		t.Fatal("want combinational settle error")
	}
}

func TestBitAndSliceAssign(t *testing.T) {
	src := `
module bits (
    input clk,
    input [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk) begin
        q[3:0] <= d[7:4];
        q[7] <= d[0];
    end
endmodule
`
	d := mustCompile(t, src)
	tr, err := Run(d, Stimulus{{"d": 0xA5}, {"d": 0xA5}})
	if err != nil {
		t.Fatal(err)
	}
	// d = 1010_0101: q[3:0] <= 1010, q[7] <= 1.
	got, _ := tr.Value(1, "q")
	if got != 0x8A {
		t.Errorf("q = %#x, want 0x8a", got)
	}
}

func TestConcatAssign(t *testing.T) {
	src := `
module cc (
    input [3:0] a,
    input [3:0] b,
    output [7:0] y
);
    assign y = {a, b};
endmodule
`
	d := mustCompile(t, src)
	tr, err := Run(d, Stimulus{{"a": 0xC, "b": 0x3}})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.Value(0, "y"); got != 0xC3 {
		t.Errorf("y = %#x, want 0xc3", got)
	}
}

func TestRegInitApplied(t *testing.T) {
	src := `
module ini (
    input clk,
    output reg [3:0] q
);
    reg [3:0] seed = 4'd7;
    always @(posedge clk) q <= seed;
endmodule
`
	d := mustCompile(t, src)
	tr, err := Run(d, Stimulus{{}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.Value(0, "seed"); got != 7 {
		t.Errorf("seed = %d, want 7", got)
	}
	if got, _ := tr.Value(1, "q"); got != 7 {
		t.Errorf("q = %d, want 7", got)
	}
}

func TestTraceFormat(t *testing.T) {
	d := mustCompile(t, counterSrc)
	tr, err := Run(d, Stimulus{{"rst_n": 0, "en": 0}, {"rst_n": 1, "en": 1}})
	if err != nil {
		t.Fatal(err)
	}
	text := tr.Format([]string{"count", "wrap"})
	if !strings.Contains(text, "count") || !strings.Contains(text, "wrap") {
		t.Errorf("Format output missing signals:\n%s", text)
	}
}

func TestSetInputValidation(t *testing.T) {
	d := mustCompile(t, counterSrc)
	s, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetInput("count", 1); err == nil {
		t.Error("SetInput on output should fail")
	}
	if err := s.SetInput("ghost", 1); err == nil {
		t.Error("SetInput on unknown signal should fail")
	}
	if err := s.SetInput("en", 0xFF); err != nil {
		t.Errorf("SetInput: %v", err)
	}
	if v, _ := s.Get("en"); v != 1 {
		t.Errorf("en masked to %d, want 1", v)
	}
}
