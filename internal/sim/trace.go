package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/compile"
)

// Trace is the sampled history of a simulation run. Rows[i] holds the
// preponed sample for clock cycle i: the value of every signal immediately
// before the i-th rising clock edge. This matches SVA sampling semantics,
// so the SVA checker evaluates properties directly over trace rows.
type Trace struct {
	Design *compile.Design
	Rows   []map[string]uint64
}

// Len returns the number of sampled cycles.
func (t *Trace) Len() int { return len(t.Rows) }

// Value returns signal name's sampled value at cycle.
func (t *Trace) Value(cycle int, name string) (uint64, bool) {
	if cycle < 0 || cycle >= len(t.Rows) {
		return 0, false
	}
	v, ok := t.Rows[cycle][name]
	if !ok {
		if pv, pok := t.Design.Params[name]; pok {
			return pv, true
		}
	}
	return v, ok
}

// Format renders the trace as a compact waveform table for counterexample
// logs, limited to the named signals (or all signals when names is nil).
func (t *Trace) Format(names []string) string {
	if names == nil {
		names = t.Design.Order
	}
	var sb strings.Builder
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	fmt.Fprintf(&sb, "%*s |", width, "cycle")
	for i := range t.Rows {
		fmt.Fprintf(&sb, " %3d", i)
	}
	sb.WriteString("\n")
	for _, n := range names {
		fmt.Fprintf(&sb, "%*s |", width, n)
		for i := range t.Rows {
			v := t.Rows[i][n]
			fmt.Fprintf(&sb, " %3d", v)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Stimulus drives a simulation: one map of input values per clock cycle.
// The clock itself is implicit (one rising edge per entry). Reset values are
// supplied like any other input.
type Stimulus []map[string]uint64

// InputNames returns the sorted set of input names mentioned anywhere in the
// stimulus, used for validation and logging.
func (st Stimulus) InputNames() []string {
	set := map[string]bool{}
	for _, cyc := range st {
		for name := range cyc {
			set[name] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run simulates the design over the stimulus and returns the sampled trace.
// Inputs not mentioned in a cycle hold their previous value.
func Run(d *compile.Design, stim Stimulus) (*Trace, error) {
	s, err := New(d)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Design: d, Rows: make([]map[string]uint64, 0, len(stim))}
	for i, cyc := range stim {
		for name, v := range cyc {
			if err := s.SetInput(name, v); err != nil {
				return nil, fmt.Errorf("cycle %d: %w", i, err)
			}
		}
		if err := s.Settle(); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", i, err)
		}
		tr.Rows = append(tr.Rows, s.Snapshot())
		if err := s.Edge(); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", i, err)
		}
	}
	return tr, nil
}
