package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/compile"
	"repro/internal/verilog"
)

// Trace is the sampled history of a simulation run. Row i holds the
// preponed sample for clock cycle i: the value of every signal immediately
// before the i-th rising clock edge. This matches SVA sampling semantics,
// so the SVA checker evaluates properties directly over trace rows.
//
// Rows are dense slot vectors indexed by compile.Signal.Slot; names are
// materialised only at the API boundary (Value, Format). A Trace is not
// safe for concurrent use while compiled expressions are being evaluated.
type Trace struct {
	Design *compile.Design
	rows   [][]uint64
	plan   *Plan // nil when produced by the reference interpreter
	em     *mach // lazy shared machine for compiled evaluation
}

// Len returns the number of sampled cycles.
func (t *Trace) Len() int { return len(t.rows) }

// Value returns signal name's sampled value at cycle.
func (t *Trace) Value(cycle int, name string) (uint64, bool) {
	if cycle < 0 || cycle >= len(t.rows) {
		return 0, false
	}
	if sig := t.Design.Signals[name]; sig != nil {
		return t.rows[cycle][sig.Slot], true
	}
	if pv, ok := t.Design.Params[name]; ok {
		return pv, true
	}
	return 0, false
}

// Row returns the slot vector sampled at cycle (shared, read-only).
func (t *Trace) Row(cycle int) []uint64 { return t.rows[cycle] }

// CompiledExpr evaluates an expression at a sampled cycle of one trace.
type CompiledExpr func(cycle int) (uint64, error)

// CompileExpr returns an evaluator for e over this trace's sampled rows,
// with history access for the SVA sampled-value functions. Expressions
// reachable from the design's assertions resolve to the plan's precompiled
// slot-addressed closures; anything else (or any trace produced by the
// reference interpreter) falls back to the interpretive evaluator, which
// computes identical results.
func (t *Trace) CompileExpr(e verilog.Expr) CompiledExpr {
	if t.plan != nil {
		if fn, ok := t.plan.svaExpr[e]; ok {
			if t.em == nil {
				t.em = traceMach(t.plan, t.rows)
			}
			m := t.em
			return func(cycle int) (uint64, error) {
				m.vals, m.idx, m.err = t.rows[cycle], cycle, nil
				v := fn(m)
				return v, m.err
			}
		}
	}
	return func(cycle int) (uint64, error) {
		return Eval(e, traceRowEnv{t: t, idx: cycle})
	}
}

// traceRowEnv adapts a trace row to the evaluator environment, with history
// access for sampled-value functions. It is the interpretive twin of the
// plan's compiled trace evaluation.
type traceRowEnv struct {
	t   *Trace
	idx int
}

// Value implements Env.
func (e traceRowEnv) Value(name string) (uint64, bool) { return e.t.Value(e.idx, name) }

// Width implements Env.
func (e traceRowEnv) Width(name string) int {
	if sig := e.t.Design.Signals[name]; sig != nil {
		return sig.Width
	}
	return 0
}

// At implements HistoryEnv.
func (e traceRowEnv) At(offset int) Env {
	if e.idx-offset < 0 {
		return nil
	}
	return traceRowEnv{t: e.t, idx: e.idx - offset}
}

// Format renders the trace as a compact waveform table for counterexample
// logs, limited to the named signals (or all signals when names is nil).
func (t *Trace) Format(names []string) string {
	if names == nil {
		names = t.Design.Order
	}
	var sb strings.Builder
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	fmt.Fprintf(&sb, "%*s |", width, "cycle")
	for i := range t.rows {
		fmt.Fprintf(&sb, " %3d", i)
	}
	sb.WriteString("\n")
	for _, n := range names {
		fmt.Fprintf(&sb, "%*s |", width, n)
		for i := range t.rows {
			v, _ := t.Value(i, n)
			fmt.Fprintf(&sb, " %3d", v)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Stimulus drives a simulation: one map of input values per clock cycle.
// The clock itself is implicit (one rising edge per entry). Reset values are
// supplied like any other input.
type Stimulus []map[string]uint64

// InputNames returns the sorted set of input names mentioned anywhere in the
// stimulus, used for validation and logging.
func (st Stimulus) InputNames() []string {
	set := map[string]bool{}
	for _, cyc := range st {
		for name := range cyc {
			set[name] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// VecStimulus drives a fixed input list with dense per-cycle vectors:
// Rows[c][i] is the value of Inputs[i] at cycle c. It is the slot-addressed
// form the bounded model checker's stimulus loops generate, avoiding one
// map allocation and one name hash per input per cycle.
type VecStimulus struct {
	Inputs []*compile.Signal
	Rows   [][]uint64
}

// Run simulates the design over the stimulus and returns the sampled trace.
// Inputs not mentioned in a cycle hold their previous value. Simulation
// executes on the design's compiled plan; designs the planner cannot lower
// run on the reference interpreter instead (identical semantics).
func Run(d *compile.Design, stim Stimulus) (*Trace, error) {
	p := PlanOf(d)
	if p == nil {
		return RunReference(d, stim)
	}
	m := newMach(p)
	if err := m.settle(); err != nil {
		return nil, err
	}
	tr := &Trace{Design: d, plan: p, rows: make([][]uint64, 0, len(stim))}
	for i, cyc := range stim {
		for name, v := range cyc {
			if err := m.setInput(name, v); err != nil {
				return nil, fmt.Errorf("cycle %d: %w", i, err)
			}
		}
		if err := m.settle(); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", i, err)
		}
		row := make([]uint64, p.nslots)
		copy(row, m.vals)
		tr.rows = append(tr.rows, row)
		if err := m.edge(); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", i, err)
		}
	}
	return tr, nil
}

// RunVec simulates the design over a vectorised stimulus, driving input
// slots directly. Every input in stim.Inputs is set every cycle.
func RunVec(d *compile.Design, stim VecStimulus) (*Trace, error) {
	p := PlanOf(d)
	if p == nil {
		// Reference fallback: materialise the equivalent map stimulus.
		ms := make(Stimulus, len(stim.Rows))
		for c, row := range stim.Rows {
			cyc := make(map[string]uint64, len(stim.Inputs))
			for i, in := range stim.Inputs {
				cyc[in.Name] = row[i]
			}
			ms[c] = cyc
		}
		return RunReference(d, ms)
	}
	slots := make([]int32, len(stim.Inputs))
	for i, in := range stim.Inputs {
		sig := d.Signals[in.Name]
		if sig == nil || sig.Kind != compile.SigInput {
			return nil, fmt.Errorf("sim: %q is not an input", in.Name)
		}
		slots[i] = int32(sig.Slot)
	}
	m := newMach(p)
	if err := m.settle(); err != nil {
		return nil, err
	}
	tr := &Trace{Design: d, plan: p, rows: make([][]uint64, 0, len(stim.Rows))}
	for c, in := range stim.Rows {
		for i, slot := range slots {
			m.vals[slot] = in[i] & p.masks[slot]
		}
		if err := m.settle(); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", c, err)
		}
		row := make([]uint64, p.nslots)
		copy(row, m.vals)
		tr.rows = append(tr.rows, row)
		if err := m.edge(); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", c, err)
		}
	}
	return tr, nil
}

// RunReference simulates the design on the reference interpreter. It is the
// semantic oracle the differential tests hold Run's compiled plan against,
// and the fallback for designs the planner cannot lower.
func RunReference(d *compile.Design, stim Stimulus) (*Trace, error) {
	s, err := New(d)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Design: d, rows: make([][]uint64, 0, len(stim))}
	for i, cyc := range stim {
		for name, v := range cyc {
			if err := s.SetInput(name, v); err != nil {
				return nil, fmt.Errorf("cycle %d: %w", i, err)
			}
		}
		if err := s.Settle(); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", i, err)
		}
		tr.rows = append(tr.rows, s.snapshotRow())
		if err := s.Edge(); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", i, err)
		}
	}
	return tr, nil
}
