package sim

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/compile"
	"repro/internal/verilog"
)

// Trace is the sampled history of a simulation run. Row i holds the
// preponed sample for clock cycle i: the value of every signal immediately
// before the i-th rising clock edge. This matches SVA sampling semantics,
// so the SVA checker evaluates properties directly over trace rows.
//
// Rows are dense slot vectors indexed by compile.Signal.Slot; names are
// materialised only at the API boundary (Value, Format). A Trace is not
// safe for concurrent use while compiled expressions are being evaluated.
type Trace struct {
	Design *compile.Design
	rows   [][]uint64
	// unks is the unknown-bit plane of a four-state trace, row-parallel to
	// rows; nil for two-state traces (everything known).
	unks [][]uint64
	plan *Plan // nil when produced by the reference interpreter
	em   *mach // lazy shared machine for compiled evaluation
	em4  *mach // lazy shared machine for compiled four-state evaluation

	// fired[c] is the per-domain fired mask of the edge that followed row c
	// (bit k set = Design.Domains[k] ticked); nil for single-domain traces,
	// where every row is one tick of the only clock.
	fired []uint64
}

// Len returns the number of sampled cycles.
func (t *Trace) Len() int { return len(t.rows) }

// Mode returns the value domain the trace was sampled in.
func (t *Trace) Mode() Mode {
	if t.unks != nil {
		return FourState
	}
	return TwoState
}

// Value returns signal name's sampled value at cycle (the known-bit plane;
// unknown bits read as 0).
func (t *Trace) Value(cycle int, name string) (uint64, bool) {
	v, ok := t.Value4(cycle, name)
	return v.Val, ok
}

// Value4 returns signal name's sampled four-state value at cycle.
func (t *Trace) Value4(cycle int, name string) (V4, bool) {
	if cycle < 0 || cycle >= len(t.rows) {
		return V4{}, false
	}
	if sig := t.Design.Signals[name]; sig != nil {
		v := V4{Val: t.rows[cycle][sig.Slot]}
		if t.unks != nil {
			v.Unk = t.unks[cycle][sig.Slot]
		}
		return v, true
	}
	if pv, ok := t.Design.Params[name]; ok {
		return known(pv), true
	}
	return V4{}, false
}

// Fired returns the per-domain fired mask for the edge that followed
// cycle's sample (bit k set = Design.Domains[k] ticked there). Single-domain
// traces report every domain fired at every cycle.
func (t *Trace) Fired(cycle int) uint64 {
	if t.fired == nil {
		return firedAll
	}
	return t.fired[cycle]
}

// DomainCycles returns the cycles sampled at domain's clock ticks — the
// sub-sequence a domain-clocked assertion advances over. For single-domain
// traces that is every cycle.
func (t *Trace) DomainCycles(domain int) []int {
	out := make([]int, 0, len(t.rows))
	for c := range t.rows {
		if t.Fired(c)>>uint(domain)&1 != 0 {
			out = append(out, c)
		}
	}
	return out
}

// Row returns the slot vector sampled at cycle (shared, read-only).
func (t *Trace) Row(cycle int) []uint64 { return t.rows[cycle] }

// UnkRow returns the unknown-bit slot vector sampled at cycle, or nil for a
// two-state trace (shared, read-only).
func (t *Trace) UnkRow(cycle int) []uint64 {
	if t.unks == nil {
		return nil
	}
	return t.unks[cycle]
}

// CompiledExpr evaluates an expression at a sampled cycle of one trace.
type CompiledExpr func(cycle int) (uint64, error)

// CompileExpr returns an evaluator for e over this trace's sampled rows,
// with history access for the SVA sampled-value functions. Expressions
// reachable from the design's assertions resolve to the plan's precompiled
// slot-addressed closures; anything else (or any trace produced by the
// reference interpreter) falls back to the interpretive evaluator, which
// computes identical results.
func (t *Trace) CompileExpr(e verilog.Expr) CompiledExpr {
	if t.plan != nil {
		if fn, ok := t.plan.svaExpr[e]; ok {
			if t.em == nil {
				t.em = traceMach(t.plan, t.rows)
			}
			m := t.em
			return func(cycle int) (uint64, error) {
				m.vals, m.idx, m.err = t.rows[cycle], cycle, nil
				v := fn(m)
				return v, m.err
			}
		}
	}
	return func(cycle int) (uint64, error) {
		return Eval(e, traceRowEnv{t: t, idx: cycle})
	}
}

// CompiledExpr4 evaluates an expression in the four-state domain at a
// sampled cycle of one trace.
type CompiledExpr4 func(cycle int) (V4, error)

// CompileExpr4 returns a four-state evaluator for e over this trace's
// sampled rows. On a two-state trace everything is known and the result is
// the two-state evaluation lifted into the Val plane — built directly over
// the plan's compiled closure so the formal checker's hot loop pays no
// extra indirection. On a four-state trace, assertion-reachable
// expressions resolve to the plan's compiled four-state closures with the
// interpretive Eval4 as the fallback.
func (t *Trace) CompileExpr4(e verilog.Expr) CompiledExpr4 {
	if t.unks == nil {
		if t.plan != nil {
			if fn, ok := t.plan.svaExpr[e]; ok {
				if t.em == nil {
					t.em = traceMach(t.plan, t.rows)
				}
				m := t.em
				return func(cycle int) (V4, error) {
					m.vals, m.idx, m.err = t.rows[cycle], cycle, nil
					v := fn(m)
					return V4{Val: v}, m.err
				}
			}
		}
		return func(cycle int) (V4, error) {
			v, err := Eval(e, traceRowEnv{t: t, idx: cycle})
			return known(v), err
		}
	}
	if t.plan != nil {
		if p4 := t.plan.fourState(); p4 != nil {
			if fn, ok := p4.svaExpr4[e]; ok {
				if t.em4 == nil {
					t.em4 = traceMach4(t.plan, t.rows, t.unks)
				}
				m := t.em4
				return func(cycle int) (V4, error) {
					m.vals, m.unks, m.idx, m.err = t.rows[cycle], t.unks[cycle], cycle, nil
					v := fn(m)
					return v, m.err
				}
			}
		}
	}
	return func(cycle int) (V4, error) {
		return Eval4(e, traceRowEnv{t: t, idx: cycle})
	}
}

// traceRowEnv adapts a trace row to the evaluator environment, with history
// access for sampled-value functions. It is the interpretive twin of the
// plan's compiled trace evaluation.
type traceRowEnv struct {
	t   *Trace
	idx int
}

// Value implements Env.
func (e traceRowEnv) Value(name string) (uint64, bool) { return e.t.Value(e.idx, name) }

// Value4 implements Env4.
func (e traceRowEnv) Value4(name string) (V4, bool) { return e.t.Value4(e.idx, name) }

// Width implements Env.
func (e traceRowEnv) Width(name string) int {
	if sig := e.t.Design.Signals[name]; sig != nil {
		return sig.Width
	}
	return 0
}

// At implements HistoryEnv.
func (e traceRowEnv) At(offset int) Env {
	if e.idx-offset < 0 {
		return nil
	}
	return traceRowEnv{t: e.t, idx: e.idx - offset}
}

// Format renders the trace as a compact waveform table for counterexample
// logs, limited to the named signals (or all signals when names is nil).
// Cells are sized to the widest rendered value, so partially-unknown
// vectors (rendered per-bit, e.g. b0000001x) keep the cycle columns
// aligned.
func (t *Trace) Format(names []string) string {
	if names == nil {
		names = t.Design.Order
	}
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	cells := make([][]string, len(names))
	cell := 3
	for ni, n := range names {
		w := 0
		if sig := t.Design.Signals[n]; sig != nil {
			w = sig.Width
		}
		cells[ni] = make([]string, len(t.rows))
		for i := range t.rows {
			v, _ := t.Value4(i, n)
			cells[ni][i] = FormatV4(v, w)
			if len(cells[ni][i]) > cell {
				cell = len(cells[ni][i])
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%*s |", width, "cycle")
	for i := range t.rows {
		fmt.Fprintf(&sb, " %*d", cell, i)
	}
	sb.WriteString("\n")
	for ni, n := range names {
		fmt.Fprintf(&sb, "%*s |", width, n)
		for i := range t.rows {
			fmt.Fprintf(&sb, " %*s", cell, cells[ni][i])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Stimulus drives a simulation: one map of input values per clock cycle.
// The clock itself is implicit (one rising edge per entry). Reset values are
// supplied like any other input.
type Stimulus []map[string]uint64

// InputNames returns the sorted set of input names mentioned anywhere in the
// stimulus, used for validation and logging.
func (st Stimulus) InputNames() []string {
	set := map[string]bool{}
	for _, cyc := range st {
		for name := range cyc {
			set[name] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// VecStimulus drives a fixed input list with dense per-cycle vectors:
// Rows[c][i] is the value of Inputs[i] at cycle c. It is the slot-addressed
// form the bounded model checker's stimulus loops generate, avoiding one
// map allocation and one name hash per input per cycle.
type VecStimulus struct {
	Inputs []*compile.Signal
	Rows   [][]uint64
}

// Run simulates the design over the stimulus and returns the sampled trace.
// Inputs not mentioned in a cycle hold their previous value. Simulation
// executes on the design's compiled plan; designs the planner cannot lower
// run on the reference interpreter instead (identical semantics). Run is
// two-state; RunMode selects the value domain.
func Run(d *compile.Design, stim Stimulus) (*Trace, error) {
	return RunMode(d, stim, TwoState)
}

// RunMode simulates the design over the stimulus in the given value domain.
// In FourState mode every signal starts x (except declared initials) and
// the compiled four-state lowering executes; designs it cannot lower fall
// back to the four-state reference interpreter.
func RunMode(d *compile.Design, stim Stimulus, mode Mode) (*Trace, error) {
	return RunModeCtx(context.Background(), d, stim, mode)
}

// stopped polls a context's done channel between simulated cycles. The
// channel is hoisted out of the run loops so an uncancellable context
// (Background's Done is nil) costs one nil check per cycle — the formal
// checker's hot loops must not pay for cancellation they never use.
func stopped(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// RunModeCtx is RunMode under a context: the run loop polls ctx between
// cycles and returns ctx.Err() once it is cancelled, so a caller-side
// deadline or disconnect stops a long simulation within one cycle.
func RunModeCtx(ctx context.Context, d *compile.Design, stim Stimulus, mode Mode) (*Trace, error) {
	done := ctx.Done()
	p := PlanOf(d)
	if p == nil {
		return RunReferenceCtx(ctx, d, stim, mode)
	}
	if mode == FourState {
		p4 := p.fourState()
		if p4 == nil {
			return RunReferenceCtx(ctx, d, stim, mode)
		}
		m := newMach4(p, p4)
		if err := m.settle4(p4); err != nil {
			return nil, err
		}
		dc := domainClocksOf(d)
		tr := &Trace{Design: d, plan: p,
			rows: make([][]uint64, 0, len(stim)),
			unks: make([][]uint64, 0, len(stim))}
		for i, cyc := range stim {
			if stopped(done) {
				return nil, ctx.Err()
			}
			if dc != nil {
				dc.capture(m.vals, m.unks)
			}
			for name, v := range cyc {
				if err := m.setInput4(name, v); err != nil {
					return nil, fmt.Errorf("cycle %d: %w", i, err)
				}
			}
			if err := m.settle4(p4); err != nil {
				return nil, fmt.Errorf("cycle %d: %w", i, err)
			}
			row := make([]uint64, p.nslots)
			copy(row, m.vals)
			unk := make([]uint64, p.nslots)
			copy(unk, m.unks)
			tr.rows = append(tr.rows, row)
			tr.unks = append(tr.unks, unk)
			f := firedAll
			if dc != nil {
				f = dc.fired(m.vals, m.unks)
				tr.fired = append(tr.fired, f)
			}
			if err := m.edge4Fired(p4, f); err != nil {
				return nil, fmt.Errorf("cycle %d: %w", i, err)
			}
		}
		return tr, nil
	}
	m := newMach(p)
	if err := m.settle(); err != nil {
		return nil, err
	}
	dc := domainClocksOf(d)
	tr := &Trace{Design: d, plan: p, rows: make([][]uint64, 0, len(stim))}
	for i, cyc := range stim {
		if stopped(done) {
			return nil, ctx.Err()
		}
		if dc != nil {
			dc.capture(m.vals, nil)
		}
		for name, v := range cyc {
			if err := m.setInput(name, v); err != nil {
				return nil, fmt.Errorf("cycle %d: %w", i, err)
			}
		}
		if err := m.settle(); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", i, err)
		}
		row := make([]uint64, p.nslots)
		copy(row, m.vals)
		tr.rows = append(tr.rows, row)
		f := firedAll
		if dc != nil {
			f = dc.fired(m.vals, nil)
			tr.fired = append(tr.fired, f)
		}
		if err := m.edgeFired(f); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", i, err)
		}
	}
	return tr, nil
}

// RunVec simulates the design over a vectorised stimulus, driving input
// slots directly. Every input in stim.Inputs is set every cycle. RunVec is
// two-state — it is the bounded model checker's hot path; RunVecMode
// selects the value domain.
func RunVec(d *compile.Design, stim VecStimulus) (*Trace, error) {
	return runVec(context.Background(), d, stim)
}

func runVec(ctx context.Context, d *compile.Design, stim VecStimulus) (*Trace, error) {
	done := ctx.Done()
	p := PlanOf(d)
	if p == nil {
		return RunReferenceCtx(ctx, d, stim.maps(), TwoState)
	}
	slots := make([]int32, len(stim.Inputs))
	for i, in := range stim.Inputs {
		sig := d.Signals[in.Name]
		if sig == nil || sig.Kind != compile.SigInput {
			return nil, fmt.Errorf("sim: %q is not an input", in.Name)
		}
		slots[i] = int32(sig.Slot)
	}
	m := newMach(p)
	if err := m.settle(); err != nil {
		return nil, err
	}
	dc := domainClocksOf(d)
	tr := &Trace{Design: d, plan: p, rows: make([][]uint64, 0, len(stim.Rows))}
	for c, in := range stim.Rows {
		if stopped(done) {
			return nil, ctx.Err()
		}
		if dc != nil {
			dc.capture(m.vals, nil)
		}
		for i, slot := range slots {
			m.vals[slot] = in[i] & p.masks[slot]
		}
		if err := m.settle(); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", c, err)
		}
		row := make([]uint64, p.nslots)
		copy(row, m.vals)
		tr.rows = append(tr.rows, row)
		f := firedAll
		if dc != nil {
			f = dc.fired(m.vals, nil)
			tr.fired = append(tr.fired, f)
		}
		if err := m.edgeFired(f); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", c, err)
		}
	}
	return tr, nil
}

// maps materialises the equivalent map stimulus for reference fallbacks.
func (st VecStimulus) maps() Stimulus {
	ms := make(Stimulus, len(st.Rows))
	for c, row := range st.Rows {
		cyc := make(map[string]uint64, len(st.Inputs))
		for i, in := range st.Inputs {
			cyc[in.Name] = row[i]
		}
		ms[c] = cyc
	}
	return ms
}

// RunVecMode is RunVec in an explicit value domain. FourState runs execute
// on the plan's four-state lowering (falling back to the reference
// interpreter when it is unavailable), so the formal checker can drive the
// same known-value stimulus enumeration over x-initialised state.
func RunVecMode(d *compile.Design, stim VecStimulus, mode Mode) (*Trace, error) {
	return RunVecCtx(context.Background(), d, stim, mode)
}

// RunVecCtx is RunVecMode under a context: the run loop polls ctx between
// cycles and returns ctx.Err() once it is cancelled. This is the seam the
// formal checker threads its context through, so a cancelled bounded check
// stops mid-run rather than finishing the stimulus.
func RunVecCtx(ctx context.Context, d *compile.Design, stim VecStimulus, mode Mode) (*Trace, error) {
	if mode != FourState {
		return runVec(ctx, d, stim)
	}
	done := ctx.Done()
	p := PlanOf(d)
	var p4 *plan4
	if p != nil {
		p4 = p.fourState()
	}
	if p == nil || p4 == nil {
		return RunReferenceCtx(ctx, d, stim.maps(), FourState)
	}
	slots := make([]int32, len(stim.Inputs))
	for i, in := range stim.Inputs {
		sig := d.Signals[in.Name]
		if sig == nil || sig.Kind != compile.SigInput {
			return nil, fmt.Errorf("sim: %q is not an input", in.Name)
		}
		slots[i] = int32(sig.Slot)
	}
	m := newMach4(p, p4)
	if err := m.settle4(p4); err != nil {
		return nil, err
	}
	dc := domainClocksOf(d)
	tr := &Trace{Design: d, plan: p,
		rows: make([][]uint64, 0, len(stim.Rows)),
		unks: make([][]uint64, 0, len(stim.Rows))}
	for c, in := range stim.Rows {
		if stopped(done) {
			return nil, ctx.Err()
		}
		if dc != nil {
			dc.capture(m.vals, m.unks)
		}
		for i, slot := range slots {
			m.vals[slot] = in[i] & p.masks[slot]
			m.unks[slot] = 0
		}
		if err := m.settle4(p4); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", c, err)
		}
		row := make([]uint64, p.nslots)
		copy(row, m.vals)
		unk := make([]uint64, p.nslots)
		copy(unk, m.unks)
		tr.rows = append(tr.rows, row)
		tr.unks = append(tr.unks, unk)
		f := firedAll
		if dc != nil {
			f = dc.fired(m.vals, m.unks)
			tr.fired = append(tr.fired, f)
		}
		if err := m.edge4Fired(p4, f); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", c, err)
		}
	}
	return tr, nil
}

// RunReference simulates the design on the two-state reference interpreter.
// It is the semantic oracle the differential tests hold Run's compiled plan
// against, and the fallback for designs the planner cannot lower.
func RunReference(d *compile.Design, stim Stimulus) (*Trace, error) {
	return RunReferenceMode(d, stim, TwoState)
}

// RunReferenceMode simulates the design on the reference interpreter in the
// given value domain.
func RunReferenceMode(d *compile.Design, stim Stimulus, mode Mode) (*Trace, error) {
	return RunReferenceCtx(context.Background(), d, stim, mode)
}

// RunReferenceCtx is RunReferenceMode under a context, polled between
// cycles like the compiled run loops — the reference interpreter is the
// fallback for designs the planner cannot lower, and those are exactly the
// runs slow enough to be worth cancelling.
func RunReferenceCtx(ctx context.Context, d *compile.Design, stim Stimulus, mode Mode) (*Trace, error) {
	done := ctx.Done()
	s, err := NewMode(d, mode)
	if err != nil {
		return nil, err
	}
	rc := refClocksOf(d)
	tr := &Trace{Design: d, rows: make([][]uint64, 0, len(stim))}
	if mode == FourState {
		tr.unks = make([][]uint64, 0, len(stim))
	}
	for i, cyc := range stim {
		if stopped(done) {
			return nil, ctx.Err()
		}
		if rc != nil {
			rc.capture(s)
		}
		for name, v := range cyc {
			if err := s.SetInput(name, v); err != nil {
				return nil, fmt.Errorf("cycle %d: %w", i, err)
			}
		}
		if err := s.Settle(); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", i, err)
		}
		tr.rows = append(tr.rows, s.snapshotRow())
		if tr.unks != nil {
			tr.unks = append(tr.unks, s.snapshotUnkRow())
		}
		f := firedAll
		if rc != nil {
			f = rc.fired(s)
			tr.fired = append(tr.fired, f)
		}
		if err := s.EdgeFired(f); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", i, err)
		}
	}
	return tr, nil
}
