package sim

import (
	"math/bits"
	"strconv"
)

// Mode selects the simulator's value domain.
type Mode int

// Simulation modes. TwoState is the zero value: every existing entry point
// (Run, RunVec, RunReference, New) keeps today's two-valued semantics, so
// corpora, goldens and benchmark trajectories stay comparable. FourState
// enables the x-propagating domain: registers initialise to x until reset
// or first assignment, x/z literal bits are honoured, and division by zero
// yields all-x instead of zero.
const (
	TwoState Mode = iota
	FourState
)

// String names the mode.
func (m Mode) String() string {
	if m == FourState {
		return "four-state"
	}
	return "two-state"
}

// V4 is a four-state value as two 64-bit planes: Val holds the known bit
// values and Unk marks unknown bits (z folds into x — the simulator has no
// drive-strength model, so a floating bit and a conflicting bit are both
// just "unknown"). The representation is kept canonical: Val is 0 wherever
// Unk is 1, so two V4s are equal iff both planes are equal, and the Val
// plane alone is exactly the two-state projection (unknowns read as 0).
type V4 struct {
	Val uint64
	Unk uint64
}

// known wraps a fully-known value.
func known(v uint64) V4 { return V4{Val: v} }

// xBool is the unknown single-bit boolean.
var xBool = V4{Unk: 1}

// allX is the fully-unknown 64-bit value; callers mask to width on store.
var allX = V4{Unk: ^uint64(0)}

// IsKnown reports whether no bit is unknown.
func (v V4) IsKnown() bool { return v.Unk == 0 }

// IsTrue reports whether the value is definitely nonzero: at least one bit
// is a known 1. (Canonical form makes this a plain Val test.)
func (v V4) IsTrue() bool { return v.Val != 0 }

// IsFalse reports whether the value is definitely zero: every bit is a
// known 0.
func (v V4) IsFalse() bool { return v.Val == 0 && v.Unk == 0 }

// IsXBool reports whether the value's truth is undetermined: no known 1
// bit, but at least one unknown bit.
func (v V4) IsXBool() bool { return v.Val == 0 && v.Unk != 0 }

// norm restores the canonical form (unknown bits read as 0 in Val).
func (v V4) norm() V4 { v.Val &^= v.Unk; return v }

// maskV applies a width mask to both planes.
func (v V4) maskV(m uint64) V4 { v.Val &= m; v.Unk &= m; return v }

// boolV4 wraps a known boolean.
func boolV4(b bool) V4 {
	if b {
		return V4{Val: 1}
	}
	return V4{}
}

// FormatV4 renders a sampled value for waveform tables and failure logs:
// plain decimal when fully known, a bare "x" when every in-width bit is
// unknown, and per-bit binary (b0000001x) when only some bits are — the
// repair model needs to see which bits a reset bug actually left unknown.
func FormatV4(v V4, width int) string {
	if width <= 0 || width > 64 {
		width = 64
	}
	m := maskFor(width)
	switch {
	case v.Unk&m == 0:
		return strconv.FormatUint(v.Val&m, 10)
	case v.Unk&m == m:
		return "x"
	}
	buf := make([]byte, 0, width+1)
	buf = append(buf, 'b')
	for i := width - 1; i >= 0; i-- {
		bit := uint64(1) << uint(i)
		switch {
		case v.Unk&bit != 0:
			buf = append(buf, 'x')
		case v.Val&bit != 0:
			buf = append(buf, '1')
		default:
			buf = append(buf, '0')
		}
	}
	return string(buf)
}

// ---------------------------------------------------------------------------
// Four-state operator semantics, shared by the reference interpreter
// (eval4.go) and the compiled plan (plan4.go) so the two engines implement
// the LRM rules from one definition.
// ---------------------------------------------------------------------------

// v4And is per-bit AND with absorption: 0 & x = 0.
func v4And(a, b V4) V4 {
	known0 := (^a.Val & ^a.Unk) | (^b.Val & ^b.Unk)
	unk := (a.Unk | b.Unk) &^ known0
	return V4{Val: a.Val & b.Val &^ unk, Unk: unk}
}

// v4Or is per-bit OR with absorption: 1 | x = 1.
func v4Or(a, b V4) V4 {
	known1 := a.Val | b.Val
	return V4{Val: known1, Unk: (a.Unk | b.Unk) &^ known1}
}

// v4Xor is per-bit XOR: any unknown input bit is unknown in the result.
func v4Xor(a, b V4) V4 {
	unk := a.Unk | b.Unk
	return V4{Val: (a.Val ^ b.Val) &^ unk, Unk: unk}
}

// v4Not is per-bit NOT in width mask m.
func v4Not(a V4, m uint64) V4 {
	return V4{Val: ^a.Val & m &^ a.Unk, Unk: a.Unk & m}
}

// v4Merge combines the two arms of an x-selected conditional: bits that
// agree and are known in both arms keep their value, every other bit is x
// (IEEE 1364 §5.1.13).
func v4Merge(x, y V4) V4 {
	unk := x.Unk | y.Unk | (x.Val ^ y.Val)
	return V4{Val: x.Val & y.Val &^ unk, Unk: unk}
}

// v4Eq is logical equality: x if any input bit is unknown.
func v4Eq(a, b V4) V4 {
	if a.Unk|b.Unk != 0 {
		return xBool
	}
	return boolV4(a.Val == b.Val)
}

// v4CaseEq is case equality (===): always known, compares both planes.
func v4CaseEq(a, b V4) V4 { return boolV4(a == b) }

// v4LogNot is the three-valued logical NOT.
func v4LogNot(a V4) V4 {
	switch {
	case a.IsTrue():
		return V4{}
	case a.IsFalse():
		return V4{Val: 1}
	}
	return xBool
}

// v4RedAnd reduces AND over width mask m: 0 if any bit is known 0, 1 if
// all bits are known 1, x otherwise.
func v4RedAnd(a V4, m uint64) V4 {
	a = a.maskV(m)
	switch {
	case a.Val|a.Unk != m:
		return V4{}
	case a.Unk != 0:
		return xBool
	}
	return V4{Val: 1}
}

// v4RedOr reduces OR over width mask m.
func v4RedOr(a V4, m uint64) V4 {
	a = a.maskV(m)
	switch {
	case a.Val != 0:
		return V4{Val: 1}
	case a.Unk != 0:
		return xBool
	}
	return V4{}
}

// v4RedXor reduces XOR over width mask m: x if any bit is unknown.
func v4RedXor(a V4, m uint64) V4 {
	a = a.maskV(m)
	if a.Unk != 0 {
		return xBool
	}
	return V4{Val: uint64(bits.OnesCount64(a.Val) & 1)}
}

// v4Shl shifts left: an unknown shift amount poisons the whole result.
func v4Shl(a, b V4) V4 {
	if b.Unk != 0 {
		return allX
	}
	if b.Val >= 64 {
		return V4{}
	}
	return V4{Val: a.Val << b.Val, Unk: a.Unk << b.Val}
}

// v4Shr shifts right logically.
func v4Shr(a, b V4) V4 {
	if b.Unk != 0 {
		return allX
	}
	if b.Val >= 64 {
		return V4{}
	}
	return V4{Val: a.Val >> b.Val, Unk: a.Unk >> b.Val}
}

// v4AShr shifts right arithmetically in the left operand's self-determined
// width w: an unknown sign bit fills the vacated positions with x.
func v4AShr(a, b V4, w int) V4 {
	if b.Unk != 0 {
		return allX
	}
	return V4{Val: ashr(a.Val, b.Val, w), Unk: ashr(a.Unk, b.Val, w)}.norm()
}

// v4Arith lifts a known-only binary operation: any unknown input bit makes
// the whole result x (the LRM rule for arithmetic and relational
// operators).
func v4Arith(a, b V4, op func(x, y uint64) uint64) V4 {
	if a.Unk|b.Unk != 0 {
		return allX
	}
	return known(op(a.Val, b.Val))
}

// v4RelArith is v4Arith for 1-bit relational results (x is xBool, not a
// 64-bit-wide x).
func v4RelArith(a, b V4, op func(x, y uint64) bool) V4 {
	if a.Unk|b.Unk != 0 {
		return xBool
	}
	return boolV4(op(a.Val, b.Val))
}

// v4Div implements / with the four-state rule: division by zero (or any
// unknown input) is all-x, not zero.
func v4Div(a, b V4) V4 {
	if a.Unk|b.Unk != 0 || b.Val == 0 {
		return allX
	}
	return known(a.Val / b.Val)
}

// v4Mod implements % with the same rule.
func v4Mod(a, b V4) V4 {
	if a.Unk|b.Unk != 0 || b.Val == 0 {
		return allX
	}
	return known(a.Val % b.Val)
}
