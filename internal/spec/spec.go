// Package spec writes natural-language design specifications, standing in
// for the GPT-4 spec-generation step of the paper's pipeline (Stage 1 of
// Fig. 2-I). Specifications are rendered from blueprint metadata (family
// description plus port roles) and from the module interface itself, so
// every dataset sample carries the same three inputs the paper's model
// sees: Spec, buggy SV code, and logs.
package spec

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/verilog"
)

// Generate renders the specification for a blueprint.
func Generate(b *corpus.Blueprint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Module: %s\n", b.Name())
	sb.WriteString("Ports:\n")
	docs := map[string]string{}
	for _, pd := range b.PortDocs {
		docs[pd.Name] = pd.Role
	}
	for _, p := range b.Module.Ports {
		width := 1
		if p.Range != nil {
			if hi, ok := p.Range.Hi.(*verilog.Number); ok {
				width = int(hi.Value) + 1
			}
		}
		role := docs[p.Name]
		if role == "" {
			role = "see function description"
		}
		fmt.Fprintf(&sb, "  %s: %s, %d bit", p.Name, p.Dir, width)
		if width > 1 {
			sb.WriteString("s")
		}
		fmt.Fprintf(&sb, " - %s\n", role)
	}
	sb.WriteString("Function: ")
	sb.WriteString(b.Description)
	sb.WriteString("\n")
	if n := len(b.Module.Asserts()); n > 0 {
		fmt.Fprintf(&sb, "Verification: the module embeds %d SystemVerilog assertion(s) checking the behaviour above.\n", n)
	}
	return sb.String()
}

// GenerateBare renders a minimal specification for a module without
// blueprint metadata (used for raw corpus entries in the Verilog-PT
// dataset, where only the interface is known).
func GenerateBare(m *verilog.Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Module: %s\n", m.Name)
	sb.WriteString("Ports:\n")
	for _, p := range m.Ports {
		fmt.Fprintf(&sb, "  %s: %s\n", p.Name, p.Dir)
	}
	sb.WriteString("Function: behavioural description unavailable; inferred from structure.\n")
	return sb.String()
}
