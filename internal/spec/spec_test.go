package spec

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/verilog"
)

func TestGenerate(t *testing.T) {
	b := corpus.Counter(4, 9)
	s := Generate(b)
	for _, want := range []string{
		"Module: counter_w4_m9",
		"clk: input, 1 bit",
		"count: output, 4 bits",
		"Function:",
		"wrapping up-counter",
		"Verification:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("spec missing %q:\n%s", want, s)
		}
	}
}

func TestGenerateAllBlueprints(t *testing.T) {
	for _, b := range corpus.Catalog() {
		s := Generate(b)
		if !strings.Contains(s, "Module: "+b.Name()) {
			t.Errorf("%s: bad header", b.Name())
		}
		if !strings.Contains(s, "Function: ") {
			t.Errorf("%s: missing function section", b.Name())
		}
		for _, p := range b.Module.Ports {
			if !strings.Contains(s, p.Name+":") {
				t.Errorf("%s: port %s undocumented", b.Name(), p.Name)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	b := corpus.Accu(8, 2)
	if Generate(b) != Generate(corpus.Accu(8, 2)) {
		t.Error("spec generation not deterministic")
	}
}

func TestGenerateBare(t *testing.T) {
	m, err := verilog.Parse("module m (input a, output y);\nassign y = a;\nendmodule")
	if err != nil {
		t.Fatal(err)
	}
	s := GenerateBare(m)
	if !strings.Contains(s, "Module: m") || !strings.Contains(s, "a: input") {
		t.Errorf("bare spec = %q", s)
	}
}
