package sva

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/sim"
)

// checkBoth4 runs a four-state check over both engines (compiled plan and
// reference interpreter) and requires identical verdicts and logs.
func checkBoth4(t *testing.T, src string, stim sim.Stimulus) *Result {
	t.Helper()
	d1, diags, err := compile.Compile(src)
	if err != nil || compile.HasErrors(diags) {
		t.Fatalf("compile: %v %v", err, diags)
	}
	d2, _, _ := compile.Compile(src)
	tr1, err := sim.RunMode(d1, stim, sim.FourState)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := sim.RunReferenceMode(d2, stim, sim.FourState)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Check(tr1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Check(tr2)
	if err != nil {
		t.Fatal(err)
	}
	log1 := FormatLog(d1.Module.Name, tr1, r1.Failures)
	log2 := FormatLog(d2.Module.Name, tr2, r2.Failures)
	if log1 != log2 {
		t.Fatalf("plan and reference logs differ:\n--- plan ---\n%s--- reference ---\n%s", log1, log2)
	}
	if len(r1.Failures) != len(r2.Failures) {
		t.Fatalf("plan %d failures, reference %d", len(r1.Failures), len(r2.Failures))
	}
	for i := range r1.Failures {
		if r1.Failures[i].Unknown != r2.Failures[i].Unknown {
			t.Fatalf("failure %d Unknown differs between engines", i)
		}
	}
	return r1
}

// TestFourStateSVATable drives $isunknown, === and !== through properties
// on a design with an unreset register, in both engines.
func TestFourStateSVATable(t *testing.T) {
	base := `module m (
    input clk,
    input rst_n,
    input en
);
    reg [3:0] cnt;
    always @(posedge clk) begin
        if (en)
            cnt <= 4'd2;
    end
    %s
endmodule
`
	stim := sim.Stimulus{
		{"rst_n": 0, "en": 0},
		{"rst_n": 0, "en": 0},
		{"rst_n": 1, "en": 1},
		{"rst_n": 1, "en": 0},
	}
	tests := []struct {
		name      string
		property  string
		failures  int
		unknown   bool // first failure sampled x rather than known 0
		substring string
	}{
		{
			// $isunknown is known-true while cnt is x: a property asserting
			// "never unknown" fails with a known 0, not an x.
			name:     "isunknown-detects-x",
			property: `a1: assert property (@(posedge clk) !$isunknown(cnt));`,
			failures: 3, // cycles 0..2 sample x; cycle 3 samples known 2
			unknown:  false,
		},
		{
			// === compares both planes and is always known: x === x holds.
			name:     "caseeq-known-on-x",
			property: `a2: assert property (@(posedge clk) cnt === cnt);`,
			failures: 0,
		},
		{
			// !== with a constant: while cnt is x the comparison is known
			// true (x !== 4'd3), after the load cnt==2 still !== 3.
			name:     "casene-known",
			property: `a3: assert property (@(posedge clk) cnt !== 4'd3);`,
			failures: 0,
		},
		{
			// == with an x operand samples x: the consequent is not true,
			// so the attempt fails and is flagged Unknown.
			name:     "eq-x-fails-unknown",
			property: `a4: assert property (@(posedge clk) cnt == cnt);`,
			failures: 3,
			unknown:  true,
		},
		{
			// An x antecedent is undetermined: no match, no failure, and
			// the known-true attempts still count.
			name:     "x-antecedent-vacuous",
			property: `a5: assert property (@(posedge clk) (cnt == 4'd0) |-> 1'b0);`,
			failures: 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			src := strings.Replace(base, "%s", "    "+tt.property, 1)
			res := checkBoth4(t, src, stim)
			if len(res.Failures) != tt.failures {
				t.Fatalf("%d failures, want %d: %v", len(res.Failures), tt.failures, res.Failures)
			}
			if tt.failures > 0 {
				if f := res.FirstFailure(); f.Unknown != tt.unknown {
					t.Errorf("first failure Unknown = %v, want %v (%s)", f.Unknown, tt.unknown, f)
				}
			}
		})
	}
}

// TestFourStateLogMarksX: the failure log renders x sampled values as x,
// and an unknown failing term reads "is x".
func TestFourStateLogMarksX(t *testing.T) {
	src := `module m (
    input clk,
    input en
);
    reg [3:0] cnt;
    always @(posedge clk) begin
        if (en)
            cnt <= 4'd2;
    end
    a: assert property (@(posedge clk) cnt == 4'd2);
endmodule
`
	res := checkBoth4(t, src, sim.Stimulus{{"en": 0}, {"en": 1}})
	if len(res.Failures) == 0 {
		t.Fatal("expected failures")
	}
	f := res.FirstFailure()
	if !f.Unknown {
		t.Errorf("failure not marked Unknown: %s", f)
	}
	if !strings.Contains(f.String(), "is x") {
		t.Errorf("failure string does not mark x: %s", f)
	}
}
