package sva

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/verilog"
)

// LaneResult summarises checking all assertions against one lane batch.
// It deliberately carries only what the formal driver needs to stay
// byte-equivalent with scalar runs: which lanes failed (those are demuxed
// and replayed on the scalar engine for the full Failure/log detail) and,
// per assertion, which lanes logged at least one counted (non-vacuous)
// attempt — formal.Check only records attempted-ness, not counts.
type LaneResult struct {
	// Failed has bit l set when lane l failed at least one assertion.
	Failed uint64
	// Attempted maps assertion name to the mask of lanes with at least one
	// counted (pass or fail) attempt.
	Attempted map[string]uint64
}

// CheckLanes evaluates every assertion of the batch's design across all
// lanes at once, running the same bounded attempt automaton as Check but on
// packed truth words: one word op decides a term for 64 lanes. It returns
// an error when any property expression was not lane-compiled (or fails to
// evaluate); callers fall back to demuxing and checking per lane, which
// reproduces scalar semantics exactly.
func CheckLanes(lt *sim.LaneTrace) (*LaneResult, error) {
	// Multi-clock designs are out of the packed model's reach: assertions
	// sample only on their own clock's ticks, and each lane carries its own
	// clock stimulus, so the tick subsequences diverge across lanes and no
	// single truth word describes "the same attempt position" in all of
	// them. Report it as a lane-compilation gap so callers fall back to
	// demuxed scalar checking, which applies per-lane domain ticks exactly.
	if lt.Design.MultiClock() {
		return nil, fmt.Errorf("sva: lane checking does not support multi-clock designs (%d domains)", len(lt.Design.Domains))
	}
	n := lt.Len()
	active := lt.ActiveMask()
	res := &LaneResult{Attempted: map[string]uint64{}}
	for _, a := range lt.Design.Asserts {
		// Resolve each property expression to per-cycle truth words up
		// front; every start position reuses them.
		evalAll := func(e verilog.Expr) ([]uint64, error) {
			fn := lt.CompileLaneBool(e)
			if fn == nil {
				return nil, fmt.Errorf("sva: %s is not lane-compiled", verilog.ExprString(e))
			}
			tw := make([]uint64, n)
			for c := 0; c < n; c++ {
				t, _, err := fn(c)
				if err != nil {
					return nil, err
				}
				tw[c] = t
			}
			return tw, nil
		}
		// An x disable condition is not true, so the true-mask alone decides
		// disabling, matching the scalar checker.
		var disW []uint64
		if a.DisableIff != nil {
			w, err := evalAll(a.DisableIff)
			if err != nil {
				return nil, err
			}
			disW = w
		}
		terms := func(ts []verilog.SeqTerm) ([][]uint64, error) {
			out := make([][]uint64, len(ts))
			for i, t := range ts {
				w, err := evalAll(t.Expr)
				if err != nil {
					return nil, err
				}
				out[i] = w
			}
			return out, nil
		}
		anteW, err := terms(a.Seq.Antecedent)
		if err != nil {
			return nil, err
		}
		consW, err := terms(a.Seq.Consequent)
		if err != nil {
			return nil, err
		}

		var attempted uint64
		for start := 0; start < n; start++ {
			// alive tracks lanes whose attempt is still matching; lanes leave
			// it by being disabled or by a non-matching antecedent term
			// (vacuous, uncounted) or by failing/passing the consequent.
			alive := ^uint64(0)
			cursor := start
			if a.Seq.Impl != verilog.ImplNone {
				for i, t := range a.Seq.Antecedent {
					cursor += t.DelayFromPrev
					if cursor >= n {
						alive = 0 // pending: uncounted in every lane
						break
					}
					if disW != nil {
						alive &^= disW[cursor]
					}
					// A false or x antecedent term does not match.
					alive &= anteW[i][cursor]
					if alive == 0 {
						break
					}
				}
				if alive == 0 {
					continue
				}
				if a.Seq.Impl == verilog.ImplNonOverlap {
					cursor++
				}
			}
			pending := false
			for i, t := range a.Seq.Consequent {
				cursor += t.DelayFromPrev
				if cursor >= n {
					pending = true
					break
				}
				if disW != nil {
					alive &^= disW[cursor]
				}
				if alive == 0 {
					break
				}
				// A consequent term that is not true (false or x) fails the
				// attempt in that lane.
				fail := alive &^ consW[i][cursor]
				res.Failed |= fail & active
				attempted |= fail
				alive &= consW[i][cursor]
				if alive == 0 {
					break
				}
			}
			if !pending {
				attempted |= alive // surviving lanes complete a passing attempt
			}
		}
		if attempted&active != 0 {
			res.Attempted[a.Name] = attempted & active
		}
	}
	return res, nil
}
