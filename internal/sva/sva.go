// Package sva evaluates SystemVerilog Assertions over sampled simulation
// traces. It implements the property subset used by the corpus: clocked
// properties with optional "disable iff", boolean sequence terms joined by
// ##N cycle delays, and the overlapping (|->) and non-overlapping (|=>)
// implication operators, plus the sampled-value functions handled by the
// expression evaluator ($past, $rose, $fell, $stable).
//
// Together with internal/sim and internal/formal this package plays the
// role SymbiYosys plays in the paper: deciding whether a bug/SVA pair
// triggers an assertion failure and producing the failure logs that become
// part of every SVA-Bug and SVA-Eval sample.
package sva

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/compile"
	"repro/internal/sim"
	"repro/internal/verilog"
)

// Failure is one assertion failure detected on a trace.
type Failure struct {
	Assert     compile.ResolvedAssert
	StartCycle int // cycle at which the property attempt began
	FailCycle  int // cycle at which the failing term was evaluated
	Term       verilog.Expr
	// Unknown reports that the failing term sampled x rather than a known
	// 0 (four-state traces only): the assertion fails because its
	// expression is not true, the LRM's not-true rule for assertions.
	Unknown bool
}

// String renders a single failure line.
func (f Failure) String() string {
	how := "false"
	if f.Unknown {
		how = "x"
	}
	return fmt.Sprintf("failed assertion %s at cycle %d (attempt started at cycle %d): %s is %s",
		f.Assert.Name, f.FailCycle, f.StartCycle, verilog.ExprString(f.Term), how)
}

// Result summarises checking all assertions against one trace.
type Result struct {
	Failures []Failure
	// Attempts counts non-vacuous property attempts per assertion name,
	// a coverage signal used by the SVA generator to discard properties
	// whose antecedent never fires.
	Attempts map[string]int
}

// Failed reports whether any assertion failed.
func (r *Result) Failed() bool { return len(r.Failures) > 0 }

// FirstFailure returns the earliest failure by (FailCycle, assertion name),
// or nil.
func (r *Result) FirstFailure() *Failure {
	if len(r.Failures) == 0 {
		return nil
	}
	best := r.Failures[0]
	for _, f := range r.Failures[1:] {
		if f.FailCycle < best.FailCycle ||
			(f.FailCycle == best.FailCycle && f.Assert.Name < best.Assert.Name) {
			best = f
		}
	}
	return &best
}

// Check evaluates every assertion of the trace's design over the trace.
// Property attempts that run past the end of the trace are treated as
// pending (bounded-check semantics), not failures.
//
// Each assertion's boolean terms are resolved once through the trace's
// compiled execution plan (slot-addressed closures; see internal/sim's
// Plan), so the per-start attempt loop evaluates terms without walking the
// AST or hashing signal names.
//
// On a multi-clock trace an assertion advances over the ticks of its own
// clock domain (the rows whose following edge fired that domain): ##N
// delays count ticks of the assertion's clock, not stimulus rows. The
// sampled-value functions ($past and friends) still look back in stimulus
// rows — their history plane is the raw trace.
func Check(tr *sim.Trace) (*Result, error) {
	res := &Result{Attempts: map[string]int{}}
	for _, a := range tr.Design.Asserts {
		if err := checkAssert(tr, a, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// compiledAssert is one assertion with its property expressions resolved to
// trace evaluators. Terms evaluate in the trace's value domain: on a
// two-state trace every sampled value is known and the checker behaves
// exactly as before; on a four-state trace an x antecedent term makes the
// attempt undetermined (no match, counted as vacuous) and an x consequent
// term fails the attempt — the sampled expression is not true — with the
// failure marked Unknown. An x disable-iff condition does not disable.
type compiledAssert struct {
	disable sim.CompiledExpr4 // nil when the property has no disable iff
	ante    []compiledTerm
	cons    []compiledTerm
	impl    verilog.ImplKind
}

type compiledTerm struct {
	delay int
	fn    sim.CompiledExpr4
	expr  verilog.Expr
}

func compileAssert(tr *sim.Trace, a compile.ResolvedAssert) compiledAssert {
	ca := compiledAssert{impl: a.Seq.Impl}
	if a.DisableIff != nil {
		ca.disable = tr.CompileExpr4(a.DisableIff)
	}
	for _, t := range a.Seq.Antecedent {
		ca.ante = append(ca.ante, compiledTerm{delay: t.DelayFromPrev, fn: tr.CompileExpr4(t.Expr), expr: t.Expr})
	}
	for _, t := range a.Seq.Consequent {
		ca.cons = append(ca.cons, compiledTerm{delay: t.DelayFromPrev, fn: tr.CompileExpr4(t.Expr), expr: t.Expr})
	}
	return ca
}

func checkAssert(tr *sim.Trace, a compile.ResolvedAssert, res *Result) error {
	ca := compileAssert(tr, a)
	ticks := assertTicks(tr, a)
	n := tr.Len()
	if ticks != nil {
		n = len(ticks)
	}
	for start := 0; start < n; start++ {
		outcome, err := evalAttempt(tr, ca, ticks, start)
		if err != nil {
			return err
		}
		switch outcome.kind {
		case attemptFail:
			res.Attempts[a.Name]++
			res.Failures = append(res.Failures, Failure{
				Assert:     a,
				StartCycle: tickCycle(ticks, start),
				FailCycle:  outcome.failCycle,
				Term:       outcome.failTerm,
				Unknown:    outcome.failUnknown,
			})
		case attemptPass:
			res.Attempts[a.Name]++
		}
	}
	return nil
}

// assertTicks returns the trace cycles the assertion samples at: nil on
// single-domain traces (every row is a tick of the only clock), the
// assertion's clock-domain tick cycles on multi-clock traces. An assertion
// without a resolvable clock event samples every row.
func assertTicks(tr *sim.Trace, a compile.ResolvedAssert) []int {
	d := tr.Design
	if !d.MultiClock() || a.Clock.Signal == "" || a.Clock.Edge == verilog.EdgeAny {
		return nil
	}
	for k, cd := range d.Domains {
		if cd.Signal == a.Clock.Signal && cd.Edge == a.Clock.Edge {
			return tr.DomainCycles(k)
		}
	}
	return nil
}

// tickCycle maps an attempt position to its trace cycle.
func tickCycle(ticks []int, pos int) int {
	if ticks == nil {
		return pos
	}
	return ticks[pos]
}

type attemptKind int

const (
	attemptPass attemptKind = iota
	attemptFail
	attemptVacuous // antecedent did not match or attempt disabled
	attemptPending // ran past end of bounded trace
)

type attemptOutcome struct {
	kind        attemptKind
	failCycle   int
	failTerm    verilog.Expr
	failUnknown bool
}

// evalAttempt evaluates one property attempt starting at tick position
// start. Positions count ticks of the assertion's clock: with ticks nil
// (single-domain traces) a position is a trace cycle; otherwise ticks maps
// positions to the trace cycles sampled at that clock's edges.
func evalAttempt(tr *sim.Trace, ca compiledAssert, ticks []int, start int) (attemptOutcome, error) {
	limit := tr.Len()
	if ticks != nil {
		limit = len(ticks)
	}
	disabled := func(cycle int) (bool, error) {
		if ca.disable == nil {
			return false, nil
		}
		v, err := ca.disable(cycle)
		if err != nil {
			return false, err
		}
		// An x disable condition is not true, so it does not disable.
		return v.IsTrue(), nil
	}

	cursor := start
	// Antecedent phase.
	if ca.impl != verilog.ImplNone {
		for _, term := range ca.ante {
			cursor += term.delay
			if cursor >= limit {
				return attemptOutcome{kind: attemptPending}, nil
			}
			cyc := tickCycle(ticks, cursor)
			if dis, err := disabled(cyc); err != nil {
				return attemptOutcome{}, err
			} else if dis {
				return attemptOutcome{kind: attemptVacuous}, nil
			}
			v, err := term.fn(cyc)
			if err != nil {
				return attemptOutcome{}, err
			}
			// A false or x antecedent term does not match: the attempt is
			// undetermined/vacuous, never a failure.
			if !v.IsTrue() {
				return attemptOutcome{kind: attemptVacuous}, nil
			}
		}
		if ca.impl == verilog.ImplNonOverlap {
			cursor++
		}
	}

	// Consequent phase.
	for _, term := range ca.cons {
		cursor += term.delay
		if cursor >= limit {
			return attemptOutcome{kind: attemptPending}, nil
		}
		cyc := tickCycle(ticks, cursor)
		if dis, err := disabled(cyc); err != nil {
			return attemptOutcome{}, err
		} else if dis {
			return attemptOutcome{kind: attemptVacuous}, nil
		}
		v, err := term.fn(cyc)
		if err != nil {
			return attemptOutcome{}, err
		}
		// A consequent term that is not true fails the attempt; sampling x
		// is recorded as an unknown failure (the not-true rule).
		if !v.IsTrue() {
			return attemptOutcome{kind: attemptFail, failCycle: cyc, failTerm: term.expr, failUnknown: v.IsXBool()}, nil
		}
	}
	return attemptOutcome{kind: attemptPass}, nil
}

// FormatLog renders failures as the simulator/verifier log text attached to
// dataset samples. The format is stable: the repair model parses assertion
// names and signal values out of it.
func FormatLog(moduleName string, tr *sim.Trace, failures []Failure) string {
	if len(failures) == 0 {
		return fmt.Sprintf("%s: all assertions passed (%d cycles)\n", moduleName, tr.Len())
	}
	var sb strings.Builder
	// Group by assertion; report the first failure per assertion plus a
	// total count, the way a bounded model checker reports one
	// counterexample per property.
	byName := map[string][]Failure{}
	var names []string
	for _, f := range failures {
		if _, seen := byName[f.Assert.Name]; !seen {
			names = append(names, f.Assert.Name)
		}
		byName[f.Assert.Name] = append(byName[f.Assert.Name], f)
	}
	sort.Strings(names)
	for _, name := range names {
		fs := byName[name]
		first := fs[0]
		for _, f := range fs[1:] {
			if f.FailCycle < first.FailCycle {
				first = f
			}
		}
		fmt.Fprintf(&sb, "failed assertion %s.%s at cycle %d\n", moduleName, name, first.FailCycle)
		if first.Assert.ErrMsg != "" {
			fmt.Fprintf(&sb, "  message: %s\n", first.Assert.ErrMsg)
		}
		fmt.Fprintf(&sb, "  failing term: %s (attempt started at cycle %d, %d failing attempts in trace)\n",
			verilog.ExprString(first.Term), first.StartCycle, len(fs))
		// Signal values around the failure help localisation.
		ids := signalsOf(first.Assert)
		fmt.Fprintf(&sb, "  sampled values at cycle %d:", first.FailCycle)
		for _, id := range ids {
			if v, ok := tr.Value4(first.FailCycle, id); ok {
				w := 0
				if sig := tr.Design.Signals[id]; sig != nil {
					w = sig.Width
				}
				fmt.Fprintf(&sb, " %s=%s", id, sim.FormatV4(v, w))
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// signalsOf returns the sorted identifiers referenced by an assertion's
// property (antecedent, consequent and disable expressions).
func signalsOf(a compile.ResolvedAssert) []string {
	set := map[string]bool{}
	add := func(e verilog.Expr) {
		for id := range verilog.ExprIdents(e) {
			set[id] = true
		}
	}
	if a.DisableIff != nil {
		add(a.DisableIff)
	}
	if a.Seq != nil {
		for _, t := range a.Seq.Antecedent {
			add(t.Expr)
		}
		for _, t := range a.Seq.Consequent {
			add(t.Expr)
		}
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// AssertSignals exposes the assertion-signal extraction for the repair
// model's localisation features.
func AssertSignals(a compile.ResolvedAssert) []string { return signalsOf(a) }
