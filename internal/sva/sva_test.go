package sva

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/sim"
)

func mustCompile(t *testing.T, src string) *compile.Design {
	t.Helper()
	d, diags, err := compile.Compile(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if compile.HasErrors(diags) {
		t.Fatalf("compile errors:\n%s", compile.FormatDiags(diags))
	}
	return d
}

func runAndCheck(t *testing.T, src string, stim sim.Stimulus) *Result {
	t.Helper()
	d := mustCompile(t, src)
	tr, err := sim.Run(d, stim)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	res, err := Check(tr)
	if err != nil {
		t.Fatalf("sva: %v", err)
	}
	return res
}

// The Fig. 1 accumulator, correct version: assertion must hold.
const accuGood = `
module accu (
    input clk,
    input rst_n,
    input [7:0] in,
    input valid_in,
    output reg valid_out
);
    wire end_cnt;
    reg [1:0] count;
    assign end_cnt = valid_in && count == 2'd3;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) count <= 0;
        else if (valid_in) count <= count + 1;
    end
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) valid_out <= 0;
        else if (end_cnt) valid_out <= 1;
        else valid_out <= 0;
    end
    property valid_out_check;
        @(posedge clk) disable iff (!rst_n)
        end_cnt |-> ##1 valid_out == 1;
    endproperty
    valid_out_check_assertion: assert property (valid_out_check)
        else $error("valid_out should be high when end_cnt high");
endmodule
`

func accuStim() sim.Stimulus {
	stim := sim.Stimulus{{"rst_n": 0, "in": 0, "valid_in": 0}}
	for i := 0; i < 10; i++ {
		stim = append(stim, map[string]uint64{"rst_n": 1, "in": uint64(i + 1), "valid_in": 1})
	}
	return stim
}

func TestAccuGoodPasses(t *testing.T) {
	res := runAndCheck(t, accuGood, accuStim())
	if res.Failed() {
		t.Fatalf("unexpected failures: %v", res.Failures)
	}
	if res.Attempts["valid_out_check_assertion"] == 0 {
		t.Error("assertion never attempted (vacuous coverage)")
	}
}

// The Fig. 1 bug: "else if (!end_cnt)" inverts the condition, so valid_out
// is high except right after end_cnt — the assertion must fire.
func TestAccuBugFails(t *testing.T) {
	bad := strings.Replace(accuGood, "else if (end_cnt) valid_out <= 1;", "else if (!end_cnt) valid_out <= 1;", 1)
	res := runAndCheck(t, bad, accuStim())
	if !res.Failed() {
		t.Fatal("buggy accu did not trigger assertion failure")
	}
	f := res.FirstFailure()
	if f.Assert.Name != "valid_out_check_assertion" {
		t.Errorf("failure on %q", f.Assert.Name)
	}
	// end_cnt first true at cycle 4 (count==3), so valid_out must be 1 at
	// cycle 5; the bug forces it to 0 there.
	if f.StartCycle != 4 || f.FailCycle != 5 {
		t.Errorf("failure at start=%d fail=%d, want 4/5", f.StartCycle, f.FailCycle)
	}
}

func TestDisableIffSuppresses(t *testing.T) {
	// Force a "failure" during reset: without disable iff this would fire;
	// with it, reset cycles are skipped.
	src := `
module m (
    input clk,
    input rst_n,
    input a,
    output reg q
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) q <= 0;
        else q <= a;
    end
    p: assert property (@(posedge clk) disable iff (!rst_n) q == 0 || a == 1 || $past(a) == 1);
endmodule
`
	stim := sim.Stimulus{
		{"rst_n": 0, "a": 0},
		{"rst_n": 0, "a": 0},
		{"rst_n": 1, "a": 1},
		{"rst_n": 1, "a": 1},
	}
	res := runAndCheck(t, src, stim)
	if res.Failed() {
		t.Fatalf("disable iff did not suppress reset-cycle checks: %v", res.Failures)
	}
}

func TestNonOverlapImplication(t *testing.T) {
	// req |=> ack : ack must be high the cycle after req.
	src := `
module m (
    input clk,
    input req,
    output reg ack
);
    always @(posedge clk) ack <= req;
    p: assert property (@(posedge clk) req |=> ack);
endmodule
`
	good := sim.Stimulus{{"req": 1}, {"req": 0}, {"req": 1}, {"req": 0}}
	res := runAndCheck(t, src, good)
	if res.Failed() {
		t.Fatalf("correct handshake failed: %v", res.Failures)
	}

	// Broken version: ack delayed two cycles via an extra stage.
	bad := `
module m (
    input clk,
    input req,
    output reg ack
);
    reg mid;
    always @(posedge clk) begin
        mid <= req;
        ack <= mid;
    end
    p: assert property (@(posedge clk) req |=> ack);
endmodule
`
	res = runAndCheck(t, bad, good)
	if !res.Failed() {
		t.Fatal("late ack not caught by |=>")
	}
}

func TestMultiTermSequence(t *testing.T) {
	// a |-> ##1 b ##2 c : b one cycle later, c three cycles after a.
	src := `
module m (
    input clk,
    input a,
    input b,
    input c,
    output q
);
    assign q = a;
    p: assert property (@(posedge clk) a |-> ##1 b ##2 c);
endmodule
`
	good := sim.Stimulus{
		{"a": 1, "b": 0, "c": 0},
		{"a": 0, "b": 1, "c": 0},
		{"a": 0, "b": 0, "c": 0},
		{"a": 0, "b": 0, "c": 1},
	}
	res := runAndCheck(t, src, good)
	if res.Failed() {
		t.Fatalf("satisfying trace failed: %v", res.Failures)
	}
	bad := sim.Stimulus{
		{"a": 1, "b": 0, "c": 0},
		{"a": 0, "b": 1, "c": 0},
		{"a": 0, "b": 0, "c": 0},
		{"a": 0, "b": 0, "c": 0}, // c missing
	}
	res = runAndCheck(t, src, bad)
	if !res.Failed() {
		t.Fatal("missing c not caught")
	}
	if f := res.FirstFailure(); f.FailCycle != 3 {
		t.Errorf("fail cycle = %d, want 3", f.FailCycle)
	}
}

func TestPendingAttemptsNotFailures(t *testing.T) {
	// Antecedent fires on the last cycle; the ##1 consequent runs off the
	// end of the trace and must be treated as pending, not failing.
	src := `
module m (
    input clk,
    input a,
    output reg q
);
    always @(posedge clk) q <= a;
    p: assert property (@(posedge clk) a |-> ##1 q);
endmodule
`
	stim := sim.Stimulus{{"a": 0}, {"a": 1}}
	res := runAndCheck(t, src, stim)
	if res.Failed() {
		t.Fatalf("pending attempt counted as failure: %v", res.Failures)
	}
}

func TestPlainPropertyEveryCycle(t *testing.T) {
	src := `
module m (
    input clk,
    input [3:0] x,
    output q
);
    assign q = x < 10;
    p: assert property (@(posedge clk) x < 10);
endmodule
`
	res := runAndCheck(t, src, sim.Stimulus{{"x": 3}, {"x": 9}, {"x": 12}})
	if !res.Failed() {
		t.Fatal("x=12 not caught")
	}
	if f := res.FirstFailure(); f.FailCycle != 2 {
		t.Errorf("fail cycle = %d, want 2", f.FailCycle)
	}
}

func TestSampledValueFunctions(t *testing.T) {
	src := `
module m (
    input clk,
    input rst_n,
    input en,
    output reg [3:0] cnt
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) cnt <= 0;
        else if (en) cnt <= cnt + 1;
    end
    p_step: assert property (@(posedge clk) disable iff (!rst_n)
        en |=> cnt == $past(cnt) + 1 || cnt == 0);
    p_stable: assert property (@(posedge clk) disable iff (!rst_n)
        !en |=> $stable(cnt));
endmodule
`
	stim := sim.Stimulus{
		{"rst_n": 0, "en": 0},
		{"rst_n": 1, "en": 1},
		{"rst_n": 1, "en": 1},
		{"rst_n": 1, "en": 0},
		{"rst_n": 1, "en": 1},
	}
	res := runAndCheck(t, src, stim)
	if res.Failed() {
		t.Fatalf("sampled-value properties failed on correct design: %v", res.Failures)
	}
}

func TestFormatLog(t *testing.T) {
	bad := strings.Replace(accuGood, "else if (end_cnt) valid_out <= 1;", "else if (!end_cnt) valid_out <= 1;", 1)
	d := mustCompile(t, bad)
	tr, err := sim.Run(d, accuStim())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(tr)
	if err != nil {
		t.Fatal(err)
	}
	log := FormatLog("accu", tr, res.Failures)
	for _, want := range []string{
		"failed assertion accu.valid_out_check_assertion",
		"message: valid_out should be high when end_cnt high",
		"sampled values",
		"valid_out=0",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("log missing %q:\n%s", want, log)
		}
	}
	// Passing log.
	dGood := mustCompile(t, accuGood)
	trGood, err := sim.Run(dGood, accuStim())
	if err != nil {
		t.Fatal(err)
	}
	resGood, err := Check(trGood)
	if err != nil {
		t.Fatal(err)
	}
	passLog := FormatLog("accu", trGood, resGood.Failures)
	if !strings.Contains(passLog, "all assertions passed") {
		t.Errorf("pass log = %q", passLog)
	}
}

func TestAssertSignals(t *testing.T) {
	d := mustCompile(t, accuGood)
	sigs := AssertSignals(d.Asserts[0])
	want := []string{"end_cnt", "rst_n", "valid_out"}
	if len(sigs) != len(want) {
		t.Fatalf("signals = %v, want %v", sigs, want)
	}
	for i := range want {
		if sigs[i] != want[i] {
			t.Errorf("signals[%d] = %q, want %q", i, sigs[i], want[i])
		}
	}
}
