// Package svagen validates candidate SystemVerilog assertions against
// golden designs, reproducing the two-step verification the paper applies
// to Claude-3.5's generated SVAs: each candidate is inserted into the
// golden code, compiled, and bounded-model-checked; candidates that fail on
// the golden design or are vacuous (antecedent never fires) are rejected.
//
// The corpus blueprints carry their own curated assertions, so this package
// plays two roles: re-validating those assertions end to end, and
// exercising the rejection path with deliberately corrupted candidates
// (modelling LLM hallucination).
package svagen

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/verify"
	"repro/internal/verilog"
)

// Candidate is one generated property+assert pair to validate.
type Candidate struct {
	Name  string
	Items []verilog.Item // exactly one PropertyDecl and one AssertItem
}

// Verdict classifies a validation outcome.
type Verdict int

// Verdicts.
const (
	Accepted Verdict = iota
	RejectedCompile
	RejectedFails   // assertion fires on the golden design
	RejectedVacuous // antecedent never matches within the bound
)

var verdictNames = [...]string{"accepted", "rejected-compile", "rejected-fails", "rejected-vacuous"}

// String names the verdict.
func (v Verdict) String() string { return verdictNames[v] }

// Result pairs a candidate with its verdict.
type Result struct {
	Candidate Candidate
	Verdict   Verdict
	Detail    string
}

// ValidateBlueprint checks that the blueprint's own embedded assertions
// pass non-vacuously on the golden design (the accept path). The check is
// routed through the shared verification service, so re-validating a
// blueprint the pipeline has already touched is a cache hit.
func ValidateBlueprint(b *corpus.Blueprint, seed int64) error {
	rec, err := verify.Default().CheckRecord(context.Background(), b.Source(), nil, verify.Options{Seed: seed, Depth: b.CheckDepth(16)})
	if err != nil {
		return err
	}
	switch rec.Status {
	case verify.StatusCompileError:
		return fmt.Errorf("svagen: %s: %s", b.Name(), rec.Log)
	case verify.StatusAssertFail:
		return fmt.Errorf("svagen: %s: golden design fails its assertions:\n%s", b.Name(), rec.Log)
	}
	if vac := rec.Vacuous(); len(vac) > 0 {
		return fmt.Errorf("svagen: %s: vacuous assertions %v", b.Name(), vac)
	}
	return nil
}

// ExtractCandidates lifts the blueprint's embedded property/assert pairs
// into standalone candidates.
func ExtractCandidates(b *corpus.Blueprint) []Candidate {
	var out []Candidate
	props := map[string]*verilog.PropertyDecl{}
	for _, it := range b.Module.Items {
		if p, ok := it.(*verilog.PropertyDecl); ok {
			props[p.Name] = p
		}
	}
	for _, it := range b.Module.Items {
		a, ok := it.(*verilog.AssertItem)
		if !ok || a.Ref == "" {
			continue
		}
		p := props[a.Ref]
		if p == nil {
			continue
		}
		out = append(out, Candidate{
			Name: p.Name,
			Items: []verilog.Item{
				verilog.CloneItem(p),
				verilog.CloneItem(a),
			},
		})
	}
	return out
}

// CorruptCandidates derives broken variants of real candidates, modelling
// hallucinated SVAs: consequent-negated properties (fail on golden) and
// impossible-antecedent properties (vacuous).
func CorruptCandidates(b *corpus.Blueprint, rng *rand.Rand) []Candidate {
	var out []Candidate
	for i, c := range ExtractCandidates(b) {
		prop := c.Items[0].(*verilog.PropertyDecl)
		as := c.Items[1].(*verilog.AssertItem)
		switch (i + rng.Intn(2)) % 2 {
		case 0: // negate the first consequent term
			bad := verilog.CloneItem(prop).(*verilog.PropertyDecl)
			bad.Name = prop.Name + "_neg"
			if len(bad.Seq.Consequent) > 0 {
				bad.Seq.Consequent[0].Expr = &verilog.Unary{
					Op: verilog.UnaryLogicalNot, X: bad.Seq.Consequent[0].Expr,
				}
			}
			badAssert := verilog.CloneItem(as).(*verilog.AssertItem)
			badAssert.Ref = bad.Name
			badAssert.Label = bad.Name + "_assertion"
			out = append(out, Candidate{Name: bad.Name, Items: []verilog.Item{bad, badAssert}})
		default: // impossible antecedent: X && !X
			bad := verilog.CloneItem(prop).(*verilog.PropertyDecl)
			bad.Name = prop.Name + "_vac"
			impossible := &verilog.Binary{
				Op: verilog.BinLogAnd,
				X:  &verilog.Ident{Name: "clk"},
				Y:  &verilog.Unary{Op: verilog.UnaryLogicalNot, X: &verilog.Ident{Name: "clk"}},
			}
			bad.Seq = &verilog.SeqExpr{
				Antecedent: []verilog.SeqTerm{{Expr: impossible}},
				Impl:       verilog.ImplOverlap,
				Consequent: bad.Seq.Consequent,
			}
			if len(bad.Seq.Consequent) == 0 {
				bad.Seq.Consequent = []verilog.SeqTerm{{Expr: &verilog.Number{Value: 1}}}
			}
			badAssert := verilog.CloneItem(as).(*verilog.AssertItem)
			badAssert.Ref = bad.Name
			badAssert.Label = bad.Name + "_assertion"
			out = append(out, Candidate{Name: bad.Name, Items: []verilog.Item{bad, badAssert}})
		}
	}
	return out
}

// ValidateCandidate runs the two-step check on a single candidate: the
// verification service substitutes the candidate for the golden module's
// own assertions (strip + insert), recompiles and bounded-model-checks.
func ValidateCandidate(b *corpus.Blueprint, c Candidate, seed int64) Result {
	rec, err := verify.Default().CheckRecord(context.Background(), b.Source(), c.Items, verify.Options{Seed: seed, Depth: b.CheckDepth(16)})
	if err != nil {
		return Result{Candidate: c, Verdict: RejectedCompile, Detail: err.Error()}
	}
	switch rec.Status {
	case verify.StatusCompileError:
		return Result{Candidate: c, Verdict: RejectedCompile, Detail: rec.Log}
	case verify.StatusAssertFail:
		return Result{Candidate: c, Verdict: RejectedFails, Detail: rec.Log}
	}
	if vac := rec.Vacuous(); len(vac) > 0 {
		return Result{Candidate: c, Verdict: RejectedVacuous, Detail: fmt.Sprint(vac)}
	}
	return Result{Candidate: c, Verdict: Accepted}
}

// Filter validates a candidate list, returning accepted and rejected sets.
func Filter(b *corpus.Blueprint, cands []Candidate, seed int64) (accepted []Candidate, rejected []Result) {
	for _, c := range cands {
		r := ValidateCandidate(b, c, seed)
		if r.Verdict == Accepted {
			accepted = append(accepted, c)
		} else {
			rejected = append(rejected, r)
		}
	}
	return accepted, rejected
}
