package svagen

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
)

func TestValidateBlueprintAccepts(t *testing.T) {
	for _, name := range []string{"counter_w4_m9", "accu_w8_g2", "fifo_flags_d3"} {
		b := corpus.ByName(name)
		if b == nil {
			t.Fatalf("missing blueprint %s", name)
		}
		if err := ValidateBlueprint(b, 11); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestExtractCandidates(t *testing.T) {
	b := corpus.Counter(4, 9)
	cands := ExtractCandidates(b)
	if len(cands) != 4 {
		t.Fatalf("got %d candidates, want 4 (counter has 4 properties)", len(cands))
	}
	names := map[string]bool{}
	for _, c := range cands {
		names[c.Name] = true
		if len(c.Items) != 2 {
			t.Errorf("%s: %d items, want 2", c.Name, len(c.Items))
		}
	}
	for _, want := range []string{"p_wrap", "p_bound", "p_incr", "p_hold"} {
		if !names[want] {
			t.Errorf("missing candidate %s", want)
		}
	}
}

func TestRealCandidatesAccepted(t *testing.T) {
	b := corpus.Counter(4, 9)
	accepted, rejected := Filter(b, ExtractCandidates(b), 5)
	if len(rejected) != 0 {
		for _, r := range rejected {
			t.Errorf("rejected %s: %s (%s)", r.Candidate.Name, r.Verdict, r.Detail)
		}
	}
	if len(accepted) != 4 {
		t.Errorf("accepted %d, want 4", len(accepted))
	}
}

func TestCorruptCandidatesRejected(t *testing.T) {
	b := corpus.Counter(4, 9)
	rng := rand.New(rand.NewSource(3))
	corrupted := CorruptCandidates(b, rng)
	if len(corrupted) == 0 {
		t.Fatal("no corrupted candidates generated")
	}
	accepted, rejected := Filter(b, corrupted, 5)
	if len(accepted) != 0 {
		for _, c := range accepted {
			t.Errorf("corrupted candidate %s was accepted", c.Name)
		}
	}
	// The two corruption modes must both appear and carry the right verdict.
	verdicts := map[Verdict]int{}
	for _, r := range rejected {
		verdicts[r.Verdict]++
	}
	if verdicts[RejectedFails] == 0 {
		t.Error("no candidate rejected for failing on golden")
	}
	if verdicts[RejectedVacuous] == 0 {
		t.Error("no candidate rejected as vacuous")
	}
}

func TestValidateCandidateIsolation(t *testing.T) {
	// Validating one candidate must not be influenced by the blueprint's
	// other assertions: strip-and-insert leaves exactly one assert.
	b := corpus.Counter(4, 9)
	c := ExtractCandidates(b)[0]
	r := ValidateCandidate(b, c, 5)
	if r.Verdict != Accepted {
		t.Fatalf("verdict = %s, detail: %s", r.Verdict, r.Detail)
	}
}
