package vcd

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/sim"
)

// fourStateTrace builds a trace with unknown bits: an unreset 4-bit
// register plus a known input.
func fourStateTrace(t *testing.T) *sim.Trace {
	t.Helper()
	src := `module m (
    input clk,
    input en,
    output [3:0] q
);
    reg [3:0] cnt;
    always @(posedge clk) begin
        if (en)
            cnt <= 4'b0101;
    end
    assign q = cnt;
endmodule
`
	d, diags, err := compile.Compile(src)
	if err != nil || compile.HasErrors(diags) {
		t.Fatalf("compile: %v %v", err, diags)
	}
	tr, err := sim.RunMode(d, sim.Stimulus{{"en": 0}, {"en": 1}, {"en": 0}}, sim.FourState)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestWriteFourStateX: unknown bits emit 'x' value characters, vectors stay
// zero-padded to the declared $var width, and once the register resolves
// the known value replaces the x word.
func TestWriteFourStateX(t *testing.T) {
	tr := fourStateTrace(t)
	out, err := Strings(tr, Options{Signals: []string{"cnt", "en"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "$var reg 4 ! cnt [3:0] $end") {
		t.Fatalf("missing cnt $var declaration:\n%s", out)
	}
	// Cycle 0: cnt is fully unknown, padded to 4 value characters.
	if !strings.Contains(out, "bxxxx !") {
		t.Errorf("initial all-x vector not emitted as bxxxx:\n%s", out)
	}
	// Cycle 2 (after the enabled edge): the known value replaces it.
	if !strings.Contains(out, "b0101 !") {
		t.Errorf("resolved value b0101 not emitted:\n%s", out)
	}
	// No malformed vector words: every b-word must be exactly width 4.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "b") {
			word := strings.SplitN(line[1:], " ", 2)[0]
			if len(word) != 4 {
				t.Errorf("vector %q not padded to $var width 4", line)
			}
		}
	}
}

// TestWriteFourStateScalarX: a 1-bit unknown emits the bare x character.
func TestWriteFourStateScalarX(t *testing.T) {
	src := `module m (
    input clk,
    output q
);
    reg q0;
    assign q = q0;
endmodule
`
	d, diags, err := compile.Compile(src)
	if err != nil || compile.HasErrors(diags) {
		t.Fatalf("compile: %v %v", err, diags)
	}
	tr, err := sim.RunMode(d, sim.Stimulus{{}}, sim.FourState)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Strings(tr, Options{Signals: []string{"q0"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "x!") {
		t.Errorf("scalar x value character not emitted:\n%s", out)
	}
}

// TestWriteTwoStateUnchanged: a two-state trace of the same design never
// contains x value characters.
func TestWriteTwoStateUnchanged(t *testing.T) {
	trSrc := fourStateTrace(t)
	tr, err := sim.Run(trSrc.Design, sim.Stimulus{{"en": 0}, {"en": 1}, {"en": 0}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Strings(tr, Options{Signals: []string{"cnt", "en"}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "x") {
		t.Errorf("two-state dump contains x characters:\n%s", out)
	}
}
