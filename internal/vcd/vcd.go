// Package vcd renders simulation traces as Value Change Dump (IEEE 1364
// §18) text, the interchange format every waveform viewer reads. The
// pipeline uses it to ship counterexample traces alongside failure logs,
// and cmd/solve can emit the failing waveform next to its repair
// suggestions.
package vcd

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// Options control rendering.
type Options struct {
	// Timescale per clock cycle; default "1ns".
	Timescale string
	// Signals restricts the dump to the named signals (nil = all, in the
	// design's deterministic order).
	Signals []string
	// Date stamps the header; empty omits the field (keeps output
	// deterministic for tests and dataset artefacts).
	Date time.Time
}

// Write renders the trace as a VCD document. Each trace row (a preponed
// sample) becomes one timestep; the clock itself is emitted as an extra
// toggling signal so viewers show edges.
func Write(w io.Writer, tr *sim.Trace, opts Options) error {
	if tr == nil || tr.Design == nil {
		return fmt.Errorf("vcd: nil trace")
	}
	ts := opts.Timescale
	if ts == "" {
		ts = "1ns"
	}
	names := opts.Signals
	if names == nil {
		names = tr.Design.Order
	}
	for _, n := range names {
		if tr.Design.Signals[n] == nil {
			return fmt.Errorf("vcd: unknown signal %q", n)
		}
	}

	var sb strings.Builder
	if !opts.Date.IsZero() {
		fmt.Fprintf(&sb, "$date %s $end\n", opts.Date.UTC().Format(time.RFC3339))
	}
	sb.WriteString("$version repro AssertSolver reproduction $end\n")
	fmt.Fprintf(&sb, "$timescale %s $end\n", ts)
	ids := identifiers(len(names) + 1)
	clkID := ids[len(names)]
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = tr.Design.Signals[n].Width
	}
	writeScopes(&sb, tr, names, ids, widths, clkID)
	sb.WriteString("$enddefinitions $end\n")

	// Initial dump plus per-cycle changes. Each cycle spans two timesteps
	// so the synthetic clock shows a rising edge at the sample point.
	prev := make([]sim.V4, len(names))
	first := true
	for c := 0; c < tr.Len(); c++ {
		fmt.Fprintf(&sb, "#%d\n", 2*c)
		if first {
			sb.WriteString("$dumpvars\n")
		}
		for i, n := range names {
			v, _ := tr.Value4(c, n)
			if first || v != prev[i] {
				writeValue(&sb, v, widths[i], ids[i])
			}
			prev[i] = v
		}
		fmt.Fprintf(&sb, "1%s\n", clkID)
		if first {
			sb.WriteString("$end\n")
			first = false
		}
		fmt.Fprintf(&sb, "#%d\n0%s\n", 2*c+1, clkID)
	}
	fmt.Fprintf(&sb, "#%d\n", 2*tr.Len())
	_, err := io.WriteString(w, sb.String())
	return err
}

// scopeNode is one level of the VCD scope tree. Flattened hierarchical
// names ("u0.count") split on dots: each instance path segment becomes a
// nested $scope module, and only the leaf segment is declared as a $var —
// dotted identifiers are not legal VCD variable names, and nesting lets
// waveform viewers show the instance tree the elaborator flattened.
type scopeNode struct {
	vars  []int // indices into the flat names slice, declaration order
	order []string
	kids  map[string]*scopeNode
}

func (n *scopeNode) child(name string) *scopeNode {
	if n.kids == nil {
		n.kids = map[string]*scopeNode{}
	}
	k, ok := n.kids[name]
	if !ok {
		k = &scopeNode{}
		n.kids[name] = k
		n.order = append(n.order, name)
	}
	return k
}

// writeScopes renders the $scope/$var header. The synthetic clock lives in
// the top scope; signals keep their flat identifier codes so the value
// change section below is untouched by the hierarchy.
func writeScopes(sb *strings.Builder, tr *sim.Trace, names, ids []string, widths []int, clkID string) {
	root := &scopeNode{}
	for i, n := range names {
		node := root
		segs := strings.Split(n, ".")
		for _, s := range segs[:len(segs)-1] {
			node = node.child(s)
		}
		node.vars = append(node.vars, i)
	}
	var emit func(node *scopeNode, name string, top bool)
	emit = func(node *scopeNode, name string, top bool) {
		fmt.Fprintf(sb, "$scope module %s $end\n", name)
		for _, i := range node.vars {
			n := names[i]
			leaf := n[strings.LastIndexByte(n, '.')+1:]
			kind := "wire"
			if tr.Design.Signals[n].IsReg {
				kind = "reg"
			}
			if widths[i] == 1 {
				fmt.Fprintf(sb, "$var %s 1 %s %s $end\n", kind, ids[i], leaf)
			} else {
				fmt.Fprintf(sb, "$var %s %d %s %s [%d:0] $end\n", kind, widths[i], ids[i], leaf, widths[i]-1)
			}
		}
		if top {
			fmt.Fprintf(sb, "$var wire 1 %s clk $end\n", clkID)
		}
		for _, kid := range node.order {
			emit(node.kids[kid], kid, false)
		}
		sb.WriteString("$upscope $end\n")
	}
	emit(root, tr.Design.Module.Name, true)
}

func writeValue(sb *strings.Builder, v sim.V4, width int, id string) {
	if width == 1 {
		if v.Unk&1 != 0 {
			fmt.Fprintf(sb, "x%s\n", id)
			return
		}
		fmt.Fprintf(sb, "%d%s\n", v.Val&1, id)
		return
	}
	if v.Unk == 0 {
		// Zero-pad to the declared $var width: strict viewers left-align
		// unpadded vector values against the MSB, misreading b101 in an
		// 8-bit variable as 0xA0 rather than 0x05.
		fmt.Fprintf(sb, "b%0*b %s\n", width, v.Val, id)
		return
	}
	// Unknown bits emit the 'x' value character, still padded to the
	// declared width.
	sb.WriteByte('b')
	for i := width - 1; i >= 0; i-- {
		bit := uint64(1) << uint(i)
		switch {
		case v.Unk&bit != 0:
			sb.WriteByte('x')
		case v.Val&bit != 0:
			sb.WriteByte('1')
		default:
			sb.WriteByte('0')
		}
	}
	fmt.Fprintf(sb, " %s\n", id)
}

// identifiers generates n distinct short VCD identifier codes from the
// printable range '!'..'~'.
func identifiers(n int) []string {
	const lo, hi = 33, 126
	out := make([]string, n)
	for i := 0; i < n; i++ {
		x := i
		var b []byte
		for {
			b = append(b, byte(lo+x%(hi-lo+1)))
			x = x/(hi-lo+1) - 1
			if x < 0 {
				break
			}
		}
		out[i] = string(b)
	}
	return out
}

// Strings renders a trace to a string (convenience for logs and tests).
func Strings(tr *sim.Trace, opts Options) (string, error) {
	var sb strings.Builder
	if err := Write(&sb, tr, opts); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// SortedSignalNames returns the trace's signal names sorted, a helper for
// callers choosing a subset.
func SortedSignalNames(tr *sim.Trace) []string {
	out := append([]string(nil), tr.Design.Order...)
	sort.Strings(out)
	return out
}
