package vcd

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/sim"
)

func traceFixture(t *testing.T) *sim.Trace {
	t.Helper()
	src := `
module m (
    input clk,
    input [3:0] d,
    output reg [3:0] q,
    output one
);
    assign one = q[0];
    always @(posedge clk) q <= d;
endmodule
`
	d, diags, err := compile.Compile(src)
	if err != nil || compile.HasErrors(diags) {
		t.Fatal("fixture broken")
	}
	tr, err := sim.Run(d, sim.Stimulus{
		{"d": 5}, {"d": 5}, {"d": 9}, {"d": 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestWriteStructure(t *testing.T) {
	tr := traceFixture(t)
	out, err := Strings(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module m $end",
		"$var wire 4", // input d
		"$var reg 4",  // q
		"$var wire 1",
		"$enddefinitions $end",
		"$dumpvars",
		"#0",
		"b0101 ", // d = 5, zero-padded to the declared 4-bit width
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// The synthetic clock must toggle: both phases appear.
	if !strings.Contains(out, "#1\n0") {
		t.Error("missing clock low phase")
	}
}

func TestChangeOnlySemantics(t *testing.T) {
	tr := traceFixture(t)
	out, err := Strings(tr, Options{Signals: []string{"d"}})
	if err != nil {
		t.Fatal(err)
	}
	// d is 5,5,9,9: the value line b0101 must appear exactly once (initial
	// dump) and b1001 exactly once (the change), not once per cycle.
	if got := strings.Count(out, "b0101 "); got != 1 {
		t.Errorf("b0101 appears %d times, want 1", got)
	}
	if got := strings.Count(out, "b1001 "); got != 1 {
		t.Errorf("b1001 appears %d times, want 1", got)
	}
}

func TestSignalSubsetAndErrors(t *testing.T) {
	tr := traceFixture(t)
	out, err := Strings(tr, Options{Signals: []string{"q"}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, " d ") {
		t.Error("subset dump leaked other signals")
	}
	if _, err := Strings(tr, Options{Signals: []string{"ghost"}}); err == nil {
		t.Error("unknown signal accepted")
	}
	if _, err := Strings(nil, Options{}); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestIdentifiersDistinct(t *testing.T) {
	ids := identifiers(500)
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate identifier %q", id)
		}
		seen[id] = true
		if id == "" {
			t.Fatal("empty identifier")
		}
	}
}

func TestDeterministic(t *testing.T) {
	tr := traceFixture(t)
	a, _ := Strings(tr, Options{})
	b, _ := Strings(tr, Options{})
	if a != b {
		t.Error("VCD output not deterministic")
	}
}

// TestVectorValuesPaddedToDeclaredWidth round-trips the dump: every b-value
// line must carry exactly as many binary digits as its $var declares.
// Strict viewers left-align unpadded values against the MSB, so b101 in a
// 4-bit variable would display as 10 instead of 5.
func TestVectorValuesPaddedToDeclaredWidth(t *testing.T) {
	tr := traceFixture(t)
	out, err := Strings(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Collect declared widths per identifier code from the $var lines.
	widths := map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) >= 5 && f[0] == "$var" {
			w, err := strconv.Atoi(f[2])
			if err != nil {
				t.Fatalf("bad $var width in %q", line)
			}
			widths[f[3]] = w
		}
	}
	if len(widths) == 0 {
		t.Fatal("no $var declarations found")
	}
	checked := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "b") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("malformed vector value line %q", line)
		}
		digits := strings.TrimPrefix(f[0], "b")
		w, ok := widths[f[1]]
		if !ok {
			t.Fatalf("value for undeclared identifier in %q", line)
		}
		if len(digits) != w {
			t.Errorf("value %q has %d digits, $var declares %d", line, len(digits), w)
		}
		if v, err := strconv.ParseUint(digits, 2, 64); err != nil {
			t.Errorf("unparseable binary value %q", line)
		} else if v > (uint64(1)<<uint(w))-1 {
			t.Errorf("value %q exceeds its declared width", line)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no vector value lines found")
	}
}

// TestWriteUnknownSignal covers the error path cmd/solve hits when asked
// to dump a signal the design does not declare: Write must reject the
// request by name and produce no partial output.
func TestWriteUnknownSignal(t *testing.T) {
	tr := traceFixture(t)
	var sb strings.Builder
	err := Write(&sb, tr, Options{Signals: []string{"q", "ghost"}})
	if err == nil {
		t.Fatal("unknown signal accepted")
	}
	if !strings.Contains(err.Error(), "ghost") {
		t.Errorf("error %q does not name the unknown signal", err)
	}
	if sb.Len() != 0 {
		t.Errorf("partial VCD written despite error: %q", sb.String())
	}
}

// TestWriteHierarchicalScopes checks that flattened dotted names become
// nested $scope blocks: the instance path turns into module scopes and
// only leaf segments are declared as $var identifiers.
func TestWriteHierarchicalScopes(t *testing.T) {
	src := `
module counter (input clk, input rst_n, output reg [3:0] count);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) count <= 0;
        else count <= count + 1;
    end
endmodule

module pair (input clk, input rst_n, output [3:0] a, output [3:0] b);
    counter u0 (.clk(clk), .rst_n(rst_n), .count(a));
    counter u1 (.clk(clk), .rst_n(rst_n), .count(b));
endmodule
`
	d, diags, err := compile.Compile(src)
	if err != nil || compile.HasErrors(diags) {
		t.Fatalf("fixture broken: %v %v", err, diags)
	}
	tr, err := sim.Run(d, sim.Stimulus{{"rst_n": 1}, {"rst_n": 1}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Strings(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"$scope module pair $end",
		"$scope module u0 $end",
		"$scope module u1 $end",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "u0.count") {
		t.Errorf("dotted identifier leaked into $var declarations:\n%s", out)
	}
	// Both instance counters declare a leaf "count" var in their own scope.
	if got := strings.Count(out, " count [3:0] $end"); got != 2 {
		t.Errorf("count $var declared %d times, want 2:\n%s", got, out)
	}
	if got, want := strings.Count(out, "$scope"), strings.Count(out, "$upscope"); got != want {
		t.Errorf("%d $scope vs %d $upscope", got, want)
	}
}
