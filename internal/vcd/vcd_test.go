package vcd

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/sim"
)

func traceFixture(t *testing.T) *sim.Trace {
	t.Helper()
	src := `
module m (
    input clk,
    input [3:0] d,
    output reg [3:0] q,
    output one
);
    assign one = q[0];
    always @(posedge clk) q <= d;
endmodule
`
	d, diags, err := compile.Compile(src)
	if err != nil || compile.HasErrors(diags) {
		t.Fatal("fixture broken")
	}
	tr, err := sim.Run(d, sim.Stimulus{
		{"d": 5}, {"d": 5}, {"d": 9}, {"d": 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestWriteStructure(t *testing.T) {
	tr := traceFixture(t)
	out, err := Strings(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module m $end",
		"$var wire 4", // input d
		"$var reg 4",  // q
		"$var wire 1",
		"$enddefinitions $end",
		"$dumpvars",
		"#0",
		"b101 ", // d = 5
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// The synthetic clock must toggle: both phases appear.
	if !strings.Contains(out, "#1\n0") {
		t.Error("missing clock low phase")
	}
}

func TestChangeOnlySemantics(t *testing.T) {
	tr := traceFixture(t)
	out, err := Strings(tr, Options{Signals: []string{"d"}})
	if err != nil {
		t.Fatal(err)
	}
	// d is 5,5,9,9: the value line b101 must appear exactly once (initial
	// dump) and b1001 exactly once (the change), not once per cycle.
	if got := strings.Count(out, "b101 "); got != 1 {
		t.Errorf("b101 appears %d times, want 1", got)
	}
	if got := strings.Count(out, "b1001 "); got != 1 {
		t.Errorf("b1001 appears %d times, want 1", got)
	}
}

func TestSignalSubsetAndErrors(t *testing.T) {
	tr := traceFixture(t)
	out, err := Strings(tr, Options{Signals: []string{"q"}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, " d ") {
		t.Error("subset dump leaked other signals")
	}
	if _, err := Strings(tr, Options{Signals: []string{"ghost"}}); err == nil {
		t.Error("unknown signal accepted")
	}
	if _, err := Strings(nil, Options{}); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestIdentifiersDistinct(t *testing.T) {
	ids := identifiers(500)
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate identifier %q", id)
		}
		seen[id] = true
		if id == "" {
			t.Fatal("empty identifier")
		}
	}
}

func TestDeterministic(t *testing.T) {
	tr := traceFixture(t)
	a, _ := Strings(tr, Options{})
	b, _ := Strings(tr, Options{})
	if a != b {
		t.Error("VCD output not deterministic")
	}
}
