package verify

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/corpus"
)

// slowOpts makes the edge-detector check exhaustively enumerate 2^24 input
// sequences — several seconds of work, far beyond any test deadline — so a
// prompt return can only mean cancellation took effect inside the
// enumeration loop.
func slowOpts() Options {
	return Options{Depth: 24, MaxExhaustiveBits: 24, RandomRuns: -1}
}

// TestCancelledCheckIsRecomputable exercises the singleflight teardown
// under the race detector: cancelling the only waiter of an in-flight
// check must remove the entry (no poisoned cache slot handing the old
// ctx error to the next caller) and release the worker slot (no leaked
// pool capacity). Run with -race.
func TestCancelledCheckIsRecomputable(t *testing.T) {
	svc := New(1) // pool of one: a leaked slot would deadlock the test
	src := corpus.EdgeDetect().Source()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := svc.Check(ctx, src, nil, slowOpts())
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the compute enter the enumeration
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled check returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled check did not return")
	}

	// The entry must be gone: a second request for the same key has to
	// start a fresh compute (blocking again), not adopt the cancelled one
	// and answer instantly with its stale error.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		_, err := svc.Check(ctx2, src, nil, slowOpts())
		errc <- err
	}()
	select {
	case err := <-errc:
		t.Fatalf("second check returned immediately (%v): adopted the cancelled entry", err)
	case <-time.After(150 * time.Millisecond):
		// Still computing: the key was recomputed on a fresh slot.
	}
	cancel2()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("second cancelled check returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second cancelled check did not return")
	}

	if m := svc.Metrics(); m.Misses != 2 || m.Hits != 0 || m.Coalesced != 0 {
		t.Fatalf("metrics after two cancelled computes: %+v, want 2 misses and no hits/coalesces", m)
	}

	// The single worker slot must be free again: a quick check on the same
	// one-slot service has to complete.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := svc.Check(context.Background(), src, nil, Options{Depth: 8, RandomRuns: -1})
		if err != nil {
			t.Errorf("post-cancel check: %v", err)
		} else if v.Status != StatusPass {
			t.Errorf("post-cancel check status = %v, want pass", v.Status)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker slot leaked: post-cancel check never ran")
	}
}

// TestCancellationIsDeadlineBounded measures the execution layer: a
// deadline firing mid-exhaustive-enumeration must surface within a small
// multiple of one simulation run, not after the remaining millions of
// runs, and the compute goroutine itself must stop (InFlight drains).
func TestCancellationIsDeadlineBounded(t *testing.T) {
	svc := New(1)
	src := corpus.EdgeDetect().Source()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := svc.Check(ctx, src, nil, slowOpts())
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The full enumeration takes seconds; a bounded cancellation returns
	// within the deadline plus scheduling slack.
	if elapsed > time.Second {
		t.Fatalf("check returned %v after a 50ms deadline: cancellation is not deadline-bounded", elapsed)
	}

	// The caller returning is not enough — the abandoned compute must stop
	// burning the pool. Poll until the in-flight gauge drains.
	deadline := time.Now().Add(2 * time.Second)
	for svc.Metrics().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned compute still in flight: cancellation did not reach the simulation loop")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
