package verify

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dataset/binfmt"
)

// DiskStore is the persistent record tier: an append-only log of
// (key, record) frames split across shard files, with an in-memory offset
// index rebuilt by scanning on open. The format reuses binfmt's framing
// conventions — shard magic, uvarint-length-prefixed payloads, bounds-
// checked field decoding — and its crash-safety contract: a torn tail
// left by a crash mid-append is detected on reopen, truncated away, and
// the clean prefix served; corruption is an error (binfmt.ErrCorrupt),
// never a panic. Unlike binfmt.Writer (which holds its index for a footer
// written on Close), nothing here depends on a clean shutdown.
type DiskStore struct {
	dir      string
	maxShard int64 // active shard rotates past this many bytes

	mu     sync.Mutex // guards appends, rotation and the index
	index  map[Key]recLoc
	shards []*os.File
	active int64 // size of the last (active) shard

	hits atomic.Uint64
}

type recLoc struct {
	shard int32
	off   int64
	n     int32
}

// defaultMaxShard rotates shards at 64 MiB — large enough that a full
// dataset build stays in a handful of files, small enough to bound the
// blast radius of a corrupt shard.
const defaultMaxShard = 64 << 20

func shardPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("verdicts-%05d.bin", id))
}

// OpenDiskStore opens (or creates) the record log in dir, scanning every
// shard to rebuild the offset index. A torn tail — a frame whose length
// prefix, payload or record encoding is incomplete — is truncated off and
// the store opens on the clean prefix; later writes append from there.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names, err := filepath.Glob(filepath.Join(dir, "verdicts-*.bin"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	ds := &DiskStore{dir: dir, maxShard: defaultMaxShard, index: map[Key]recLoc{}}
	for id, name := range names {
		f, err := os.OpenFile(name, os.O_RDWR, 0o644)
		if err != nil {
			ds.closeAll()
			return nil, err
		}
		ds.shards = append(ds.shards, f)
		size, err := ds.scanShard(id, f)
		if err != nil {
			ds.closeAll()
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		ds.active = size
	}
	if len(ds.shards) == 0 {
		if err := ds.addShard(); err != nil {
			ds.closeAll()
			return nil, err
		}
	}
	return ds, nil
}

func (ds *DiskStore) closeAll() {
	for _, f := range ds.shards {
		f.Close()
	}
}

// addShard creates and opens the next shard file with a fresh magic.
func (ds *DiskStore) addShard() error {
	f, err := os.OpenFile(shardPath(ds.dir, len(ds.shards)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(binfmt.Magic[:]); err != nil {
		f.Close()
		return err
	}
	ds.shards = append(ds.shards, f)
	ds.active = int64(binfmt.MagicLen)
	return nil
}

// scanShard walks one shard, indexing every decodable frame and
// truncating the file after the last clean one. It returns the post-scan
// (possibly truncated) size.
func (ds *DiskStore) scanShard(id int, f *os.File) (int64, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, err
	}
	if len(data) < binfmt.MagicLen {
		// Torn header write: nothing decodable was ever committed. Reset
		// the shard to a clean empty one.
		if err := f.Truncate(0); err != nil {
			return 0, err
		}
		if _, err := f.WriteAt(binfmt.Magic[:], 0); err != nil {
			return 0, err
		}
		return int64(binfmt.MagicLen), nil
	}
	if !binfmt.IsMagic(data) {
		return 0, fmt.Errorf("%w: bad shard magic", binfmt.ErrCorrupt)
	}
	off := binfmt.MagicLen
	for off < len(data) {
		payload, next, ok := nextFrame(data, off)
		if !ok {
			break // torn tail: truncate from the frame start
		}
		var key Key
		copy(key[:], payload)
		if _, err := decodeRecord(payload[sha256.Size:]); err != nil {
			break // half-written record body counts as torn too
		}
		ds.index[key] = recLoc{shard: int32(id), off: int64(off), n: int32(next - off)}
		off = next
	}
	if off < len(data) {
		if err := f.Truncate(int64(off)); err != nil {
			return 0, err
		}
	}
	return int64(off), nil
}

// maxRecordFrame bounds one frame's payload; anything larger is treated
// as corruption rather than allocated (mirrors binfmt's maxFrame stance).
const maxRecordFrame = 1 << 30

// nextFrame decodes the frame starting at off: uvarint payload length,
// then the payload (key + record). ok is false when the frame is
// incomplete or implausible — the torn-tail signal.
func nextFrame(data []byte, off int) (payload []byte, next int, ok bool) {
	n, w := binary.Uvarint(data[off:])
	if w <= 0 || n < sha256.Size || n > maxRecordFrame || n > uint64(len(data)-off-w) {
		return nil, 0, false
	}
	start := off + w
	return data[start : start+int(n)], start + int(n), true
}

// Get returns the stored record, or (nil, nil) on a miss. Records are
// decoded fresh on every read; the caller owns the result.
func (ds *DiskStore) Get(key Key) (*Record, error) {
	ds.mu.Lock()
	loc, ok := ds.index[key]
	var f *os.File
	if ok {
		f = ds.shards[loc.shard]
	}
	ds.mu.Unlock()
	if !ok {
		return nil, nil
	}
	buf := make([]byte, loc.n)
	if _, err := f.ReadAt(buf, loc.off); err != nil {
		return nil, err
	}
	payload, _, ok2 := nextFrame(buf, 0)
	if !ok2 {
		return nil, fmt.Errorf("%w: indexed frame undecodable", binfmt.ErrCorrupt)
	}
	rec, err := decodeRecord(payload[sha256.Size:])
	if err != nil {
		return nil, err
	}
	ds.hits.Add(1)
	return &rec, nil
}

// Put appends a (key, record) frame to the active shard and indexes it.
// Re-putting a key appends a new frame that shadows the old one — the
// index keeps only the latest location.
func (ds *DiskStore) Put(key Key, rec *Record) error {
	enc := binfmt.NewEncoder()
	appendRecord(enc, rec)
	body := enc.Bytes()
	frame := binary.AppendUvarint(nil, uint64(len(key)+len(body)))
	frame = append(frame, key[:]...)
	frame = append(frame, body...)

	ds.mu.Lock()
	defer ds.mu.Unlock()
	f := ds.shards[len(ds.shards)-1]
	off := ds.active
	// One contiguous write: a crash tears at most this frame's tail, which
	// the reopen scan truncates away without touching earlier frames.
	if _, err := f.WriteAt(frame, off); err != nil {
		return err
	}
	ds.index[key] = recLoc{shard: int32(len(ds.shards) - 1), off: off, n: int32(len(frame))}
	ds.active += int64(len(frame))
	if ds.active >= ds.maxShard {
		if err := ds.addShard(); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of indexed records.
func (ds *DiskStore) Len() int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return len(ds.index)
}

// DiskHits reports how many Gets this store has served since open.
func (ds *DiskStore) DiskHits() uint64 { return ds.hits.Load() }

// Close closes every shard file. The store must not be used afterwards.
func (ds *DiskStore) Close() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	var first error
	for _, f := range ds.shards {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	ds.shards = nil
	return first
}

// recordVersion tags the record encoding; bump on layout changes so old
// shards decode (or are rejected) deliberately rather than silently.
const recordVersion = 1

// appendRecord encodes a record onto e. All strings are inline (no
// interner), so the encoding is self-contained per frame.
func appendRecord(e *binfmt.Encoder, r *Record) {
	e.Byte(recordVersion)
	e.Byte(byte(r.Status))
	e.String(r.Log)
	e.String(r.DiagText)
	e.String(r.Strategy)
	e.Uvarint(uint64(r.Runs))
	e.Uvarint(uint64(len(r.FailedAsserts)))
	for _, a := range r.FailedAsserts {
		e.String(a)
	}
	e.Uvarint(uint64(len(r.VacuousAsserts)))
	for _, a := range r.VacuousAsserts {
		e.String(a)
	}
	e.Bool(r.Counterexample != nil)
	if cx := r.Counterexample; cx != nil {
		e.Uvarint(uint64(len(cx.Inputs)))
		for _, in := range cx.Inputs {
			e.String(in.Name)
			e.Uvarint(uint64(in.Width))
		}
		e.Uvarint(uint64(len(cx.Rows)))
		for _, row := range cx.Rows {
			for _, v := range row {
				e.Uvarint(v)
			}
		}
	}
}

// decodeRecord decodes one record payload. Zero-length slices decode to
// nil so a decoded record is deep-equal (and JSON-identical) to the one
// encoded.
func decodeRecord(payload []byte) (Record, error) {
	d := binfmt.NewDecoder(payload)
	var r Record
	if v := d.Byte(); d.Err() == nil && v != recordVersion {
		return r, fmt.Errorf("%w: record version %d (want %d)", binfmt.ErrCorrupt, v, recordVersion)
	}
	st := d.Byte()
	if d.Err() == nil && int(st) >= len(statusNames) {
		return r, fmt.Errorf("%w: status byte %d out of range", binfmt.ErrCorrupt, st)
	}
	r.Status = Status(st)
	r.Log = d.String()
	r.DiagText = d.String()
	r.Strategy = d.String()
	r.Runs = int(d.Uvarint())
	if n := d.Uvarint(); d.Err() == nil && n > 0 {
		r.FailedAsserts = make([]string, n)
		for i := range r.FailedAsserts {
			r.FailedAsserts[i] = d.String()
		}
	}
	if n := d.Uvarint(); d.Err() == nil && n > 0 {
		r.VacuousAsserts = make([]string, n)
		for i := range r.VacuousAsserts {
			r.VacuousAsserts[i] = d.String()
		}
	}
	if d.Bool() {
		cx := &Stimulus{}
		if n := d.Uvarint(); d.Err() == nil && n > 0 {
			cx.Inputs = make([]StimulusInput, n)
			for i := range cx.Inputs {
				cx.Inputs[i].Name = d.String()
				cx.Inputs[i].Width = int(d.Uvarint())
			}
		}
		if n := d.Uvarint(); d.Err() == nil && n > 0 {
			cx.Rows = make([][]uint64, n)
			for i := range cx.Rows {
				row := make([]uint64, len(cx.Inputs))
				for j := range row {
					row[j] = d.Uvarint()
				}
				cx.Rows[i] = row
			}
		}
		r.Counterexample = cx
	}
	if err := d.Err(); err != nil {
		return Record{}, err
	}
	if d.Remaining() != 0 {
		return Record{}, fmt.Errorf("%w: %d trailing bytes after record", binfmt.ErrCorrupt, d.Remaining())
	}
	return r, nil
}
