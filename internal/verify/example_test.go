package verify_test

import (
	"context"
	"fmt"

	"repro/internal/corpus"
	"repro/internal/verify"
)

// ExampleService_Check verifies a golden design twice through one service:
// the first check compiles and bounded-model-checks the design, the second
// identical request is answered from the content-addressed cache.
func ExampleService_Check() {
	svc := verify.New(4)
	src := corpus.Counter(4, 9).Source()

	fresh, err := svc.Check(context.Background(), src, nil, verify.Options{Seed: 1, Depth: 12})
	if err != nil {
		panic(err)
	}
	fmt.Printf("fresh:  status=%s cached=%v\n", fresh.Status, fresh.Cached)

	cached, err := svc.Check(context.Background(), src, nil, verify.Options{Seed: 1, Depth: 12})
	if err != nil {
		panic(err)
	}
	fmt.Printf("cached: status=%s cached=%v\n", cached.Status, cached.Cached)

	m := svc.Metrics()
	fmt.Printf("stats:  %d hit, %d miss\n", m.Hits, m.Misses)
	// Output:
	// fresh:  status=pass cached=false
	// cached: status=pass cached=true
	// stats:  1 hit, 1 miss
}

// ExampleService_Check_verdicts shows how the one API reports the three
// outcomes the pipeline distinguishes: a clean pass, an assertion failure
// with its counterexample log, and source that does not compile.
func ExampleService_Check_verdicts() {
	svc := verify.New(4)

	golden := corpus.Counter(4, 9)
	v, _ := svc.Check(context.Background(), golden.Source(), nil, verify.Options{Seed: 1, Depth: 12})
	fmt.Println("golden design:", v.Status)

	broken := "module broken(input clk, output reg q);\n" +
		"  always @(posedge clk) q <= undeclared_signal;\n" +
		"endmodule\n"
	v, _ = svc.Check(context.Background(), broken, nil, verify.Options{Seed: 1, Depth: 12})
	fmt.Println("broken design:", v.Status)
	// Output:
	// golden design: pass
	// broken design: compile-error
}
