package verify

import (
	"context"
	"sync"
	"testing"

	"repro/internal/compile"
	"repro/internal/corpus"
	"repro/internal/sim"
)

// TestConcurrentLaneChecks drives lane-mode formal checks through the
// worker pool from many goroutines (run under -race in CI): the lazily
// built lane plan must be constructed once per design and shared safely,
// and lane-mode verdicts must agree with scalar-mode ones for the same
// source. Mirrors TestConcurrentSingleflight, plus a direct PlanLanes
// once-per-Design assertion.
func TestConcurrentLaneChecks(t *testing.T) {
	// Direct plan-cache check: one Design, many PlanLanes callers, one plan.
	d, diags, err := compile.Compile(corpus.EdgeDetect().Source())
	if err != nil || compile.HasErrors(diags) {
		t.Fatal("fixture broken")
	}
	plans := make([]*sim.LanePlan, 32)
	var wg sync.WaitGroup
	for i := range plans {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			plans[i] = sim.PlanLanes(d)
		}()
	}
	wg.Wait()
	if plans[0] == nil {
		t.Fatal("EdgeDetect has no lane plan")
	}
	for i, p := range plans {
		if p != plans[0] {
			t.Fatalf("goroutine %d built a different lane plan: %p vs %p", i, p, plans[0])
		}
	}

	// Pool check: concurrent lane-mode checks across the corpus, compared
	// against scalar-mode verdicts of the same sources.
	svc := New(4)
	var sources []string
	for _, bp := range corpus.Catalog() {
		sources = append(sources, bp.Source())
		if len(sources) == 6 {
			break
		}
	}
	scalar := make([]Status, len(sources))
	for i, src := range sources {
		v, err := svc.Check(context.Background(), src, nil, Options{Depth: 8, RandomRuns: 4})
		if err != nil {
			t.Fatal(err)
		}
		scalar[i] = v.Status
	}
	const loops = 8
	for g := 0; g < loops; g++ {
		for si := range sources {
			si := si
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err := svc.Check(context.Background(), sources[si], nil, Options{Depth: 8, RandomRuns: 4, Lanes: 64})
				if err != nil {
					t.Errorf("lane check: %v", err)
					return
				}
				if v.Status != scalar[si] {
					t.Errorf("source %d: lane status %v, scalar %v", si, v.Status, scalar[si])
				}
			}()
		}
	}
	wg.Wait()
}
