package verify

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/verilog"
)

// Service runs checks behind the shared verdict cache, the optional
// persistent record store and the bounded worker pool. It is safe for
// concurrent use by any number of goroutines.
type Service struct {
	sem   chan struct{}
	store Store // optional persistent record tier; set before first use

	mu      sync.Mutex
	entries *gen2[*entry]

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
	diskHits  atomic.Uint64
	inFlight  atomic.Int64
}

// entry is one verdict-cache slot. The first requester starts the compute
// goroutine; every requester (owner included) counts as a waiter. The
// compute runs under its own context, cancelled only when the last waiter
// leaves before completion — at which point the entry is removed from the
// cache so the next requester recomputes on a fresh slot rather than
// observing a poisoned one.
type entry struct {
	done   chan struct{}
	cctx   context.Context
	cancel context.CancelFunc

	// waiters and completed are guarded by Service.mu; verdict and err are
	// published by close(done).
	waiters   int
	completed bool
	verdict   Verdict
	err       error
}

// New returns a service whose pool runs at most workers checks at once;
// workers <= 0 means GOMAXPROCS.
func New(workers int) *Service {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Service{
		sem:     make(chan struct{}, workers),
		entries: newGen2[*entry](maxGenEntries),
	}
}

var (
	defaultOnce sync.Once
	defaultSvc  *Service
)

// Default returns the process-wide shared service. All pipeline stages use
// it unless handed a dedicated instance, so a fix verified while judging
// responses is already cached when the repair loop re-verifies it.
func Default() *Service {
	defaultOnce.Do(func() { defaultSvc = New(0) })
	return defaultSvc
}

// SetStore attaches a persistent record tier: CheckRecord reads through
// it before computing, and completed checks are written behind to it.
// Call before the service takes traffic; the field is not synchronised.
func (s *Service) SetStore(st Store) { s.store = st }

// Metrics is a snapshot of the service's counters.
type Metrics struct {
	// Hits counts requests answered from a completed cache entry.
	Hits uint64 `json:"hits"`
	// Misses counts computations started (one per unique in-flight key).
	Misses uint64 `json:"misses"`
	// Coalesced counts requests that joined an in-flight computation
	// instead of starting their own.
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts entries aged out by generation rotation.
	Evictions uint64 `json:"evictions"`
	// DiskHits counts record requests answered by the persistent tier.
	DiskHits uint64 `json:"disk_hits"`
	// InFlight is the number of checks currently computing.
	InFlight int64 `json:"in_flight"`
	// Entries is the resident verdict-cache size (both generations).
	Entries int `json:"entries"`
}

// Metrics returns a snapshot of the service counters.
func (s *Service) Metrics() Metrics {
	m := Metrics{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Coalesced: s.coalesced.Load(),
		Evictions: s.evictions.Load(),
		DiskHits:  s.diskHits.Load(),
		InFlight:  s.inFlight.Load(),
		Entries:   s.Len(),
	}
	if hc, ok := s.store.(diskHitCounter); ok {
		// The store knows which tier served each read; prefer its count so
		// a tiered store's fast-tier hits aren't misreported as disk reads.
		m.DiskHits = hc.DiskHits()
	}
	return m
}

// Len returns the number of cached verdicts (both generations).
func (s *Service) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries.len()
}

// join finds or installs the cache entry for a key, registering the
// caller as a waiter. The second return is true when the entry already
// existed: the caller must wait on done rather than start the compute.
func (s *Service) join(key Key) (*entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries.get(key); ok {
		e.waiters++
		if e.completed {
			s.hits.Add(1)
		} else {
			s.coalesced.Add(1)
		}
		return e, true
	}
	cctx, cancel := context.WithCancel(context.Background())
	e := &entry{done: make(chan struct{}), cctx: cctx, cancel: cancel, waiters: 1}
	s.evictions.Add(uint64(s.entries.put(key, e)))
	s.misses.Add(1)
	return e, false
}

// leave deregisters a waiter that gave up before the entry completed.
// The last waiter leaving cancels the compute and removes the entry, so
// a later requester starts fresh instead of adopting a half-cancelled
// computation.
func (s *Service) leave(key Key, e *entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.waiters--
	if e.waiters == 0 && !e.completed {
		s.entries.remove(key, e)
		e.cancel()
	}
}

// wait blocks until the entry completes or ctx is cancelled. owner marks
// the requester that started the compute; everyone else observes the
// verdict as cached.
func (s *Service) wait(ctx context.Context, key Key, e *entry, owner bool) (Verdict, error) {
	select {
	case <-e.done:
	case <-ctx.Done():
		// The entry may have completed in the same instant; prefer the
		// result if it did.
		select {
		case <-e.done:
		default:
			s.leave(key, e)
			return Verdict{}, ctx.Err()
		}
	}
	v := e.verdict
	if !owner {
		v.Cached = true
	}
	return v, e.err
}

// compute runs the check for one cache entry: it acquires a worker slot
// (abortably — cancellation while queued must not leak the slot), runs
// the compile/formal sequence under the entry's context, publishes the
// verdict and writes the record behind to the store.
func (s *Service) compute(key Key, e *entry, src string, assertions []verilog.Item, opts Options) {
	defer close(e.done)
	select {
	case s.sem <- struct{}{}:
	case <-e.cctx.Done():
		e.err = e.cctx.Err()
		return
	}
	s.inFlight.Add(1)
	v, err := run(e.cctx, src, assertions, opts)
	s.inFlight.Add(-1)
	<-s.sem

	s.mu.Lock()
	if e.cctx.Err() != nil {
		// Every waiter left and the entry was removed; discard the result
		// (it may be a partial, cancelled check).
		e.err = e.cctx.Err()
		s.mu.Unlock()
		return
	}
	e.verdict, e.err = v, err
	e.completed = true
	s.mu.Unlock()
	e.cancel() // completed entries never cancel; release the context

	if s.store != nil && err == nil && !opts.CompileOnly && v.Status != StatusError {
		rec := v.Record
		_ = s.store.Put(key, &rec) // write-behind; a failed put only costs a future recompute
	}
}

// Check compiles src and bounded-model-checks its assertions. When
// assertions is non-empty the module's own property/assert items are
// replaced by the given ones first (the SVA-candidate validation flow);
// otherwise the embedded assertions are checked. The returned error is
// non-nil only for StatusError verdicts and cancellations; compile
// failures and assertion failures are ordinary verdicts. Results are
// cached by content — source, assertion set and normalised options — and
// concurrent duplicate requests coalesce into one computation that is
// cancelled only when its last waiter leaves.
func (s *Service) Check(ctx context.Context, src string, assertions []verilog.Item, opts Options) (Verdict, error) {
	key := cacheKey(src, assertions, opts)
	e, joined := s.join(key)
	if !joined {
		go s.compute(key, e, src, assertions, opts)
	}
	return s.wait(ctx, key, e, !joined)
}

// CheckRecord is Check for callers that only need the serializable
// outcome: it answers from the verdict cache or the persistent store when
// possible — a store hit costs no re-elaboration — and computes through
// the full Check path otherwise.
func (s *Service) CheckRecord(ctx context.Context, src string, assertions []verilog.Item, opts Options) (Record, error) {
	key := cacheKey(src, assertions, opts)
	s.mu.Lock()
	if e, ok := s.entries.get(key); ok {
		e.waiters++
		if e.completed {
			s.hits.Add(1)
		} else {
			s.coalesced.Add(1)
		}
		s.mu.Unlock()
		v, err := s.wait(ctx, key, e, false)
		return v.Record, err
	}
	s.mu.Unlock()
	if s.store != nil {
		if rec, err := s.store.Get(key); err == nil && rec != nil {
			s.diskHits.Add(1)
			return *rec, nil
		}
	}
	e, joined := s.join(key)
	if !joined {
		go s.compute(key, e, src, assertions, opts)
	}
	v, err := s.wait(ctx, key, e, !joined)
	return v.Record, err
}
