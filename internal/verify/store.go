package verify

import (
	"crypto/sha256"
	"sync"
)

// Key addresses one check: the sha256 of the source text, the candidate
// assertion set and the normalised options (see cacheKey).
type Key = [sha256.Size]byte

// Store holds serialized check records by content key. Implementations
// must be safe for concurrent use. Get returns (nil, nil) on a miss;
// errors are reserved for real faults (I/O, corruption), which callers
// treat as misses and recompute through.
type Store interface {
	Get(key Key) (*Record, error)
	Put(key Key, rec *Record) error
	Len() int
	Close() error
}

// maxGenEntries bounds one cache generation. A two-generation cache keeps
// the current and the previous generation, so memory is capped at roughly
// twice this many records while the recent working set (the fixes an
// evaluation or repair loop keeps re-checking) stays resident. One-shot
// checks — e.g. the tens of thousands of unique mutants of a full dataset
// build — age out instead of accumulating for the life of the process.
const maxGenEntries = 4096

// gen2 is the two-generation map shared by the Service's verdict cache
// and MemStore. Not safe for concurrent use; callers hold their own lock.
type gen2[V comparable] struct {
	cur, prev map[Key]V
	max       int
}

func newGen2[V comparable](max int) *gen2[V] {
	if max <= 0 {
		max = maxGenEntries
	}
	return &gen2[V]{cur: make(map[Key]V), max: max}
}

// get finds a key in either generation, promoting previous-generation
// hits into the current one. The promoted slot is deleted from the old
// generation, so rotation never keeps two live references to one key and
// len stays an O(1) sum.
func (g *gen2[V]) get(k Key) (V, bool) {
	if v, ok := g.cur[k]; ok {
		return v, true
	}
	if v, ok := g.prev[k]; ok {
		delete(g.prev, k)
		g.cur[k] = v
		return v, true
	}
	var zero V
	return zero, false
}

// put installs k in the current generation. Inserting into a full current
// generation rotates it to previous, aging the oldest generation out;
// the return value is the number of entries dropped by the rotation.
func (g *gen2[V]) put(k Key, v V) int {
	evicted := 0
	if len(g.cur) >= g.max {
		evicted = len(g.prev)
		g.prev = g.cur
		g.cur = make(map[Key]V, g.max)
	}
	g.cur[k] = v
	return evicted
}

// remove deletes k from both generations, but only where it still maps to
// want: the identity check keeps a stale cancellation from evicting a
// fresh recomputation that reused the key.
func (g *gen2[V]) remove(k Key, want V) {
	if v, ok := g.cur[k]; ok && v == want {
		delete(g.cur, k)
	}
	if v, ok := g.prev[k]; ok && v == want {
		delete(g.prev, k)
	}
}

func (g *gen2[V]) len() int { return len(g.cur) + len(g.prev) }

// MemStore is the in-memory record store: the two-generation cache behind
// the Store interface. The zero value is not usable; use NewMemStore.
type MemStore struct {
	mu sync.Mutex
	g  *gen2[*Record]
}

// NewMemStore returns a memory store bounded at maxEntries records per
// generation (<= 0 means the package default).
func NewMemStore(maxEntries int) *MemStore {
	return &MemStore{g: newGen2[*Record](maxEntries)}
}

// Get returns the stored record, or (nil, nil) on a miss. The record is
// shared; callers must not mutate it.
func (m *MemStore) Get(key Key) (*Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, _ := m.g.get(key)
	return rec, nil
}

// Put stores a record. The store keeps the pointer; the caller must not
// mutate the record afterwards.
func (m *MemStore) Put(key Key, rec *Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.g.put(key, rec)
	return nil
}

// Len returns the number of resident records (both generations).
func (m *MemStore) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.g.len()
}

// Close releases nothing; memory stores have no external resources.
func (m *MemStore) Close() error { return nil }

// diskHitCounter is implemented by stores that can report how many Gets
// the persistent tier served; Tiered forwards it and Service.Metrics
// prefers it over its own store-hit count when available.
type diskHitCounter interface {
	DiskHits() uint64
}

// Tiered layers a fast store over a slow one: reads go through the fast
// tier and backfill it on a slow-tier hit (read-through); writes land in
// the fast tier immediately and drain to the slow tier from a background
// writer (write-behind). Close flushes the writer and closes both tiers.
type Tiered struct {
	fast, slow Store

	wg      sync.WaitGroup
	writes  chan tieredWrite
	errMu   sync.Mutex
	lastErr error
}

type tieredWrite struct {
	key Key
	rec *Record
}

// NewTiered returns a tiered store over fast and slow and starts its
// write-behind drain.
func NewTiered(fast, slow Store) *Tiered {
	t := &Tiered{fast: fast, slow: slow, writes: make(chan tieredWrite, 256)}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for w := range t.writes {
			if err := t.slow.Put(w.key, w.rec); err != nil {
				t.errMu.Lock()
				t.lastErr = err
				t.errMu.Unlock()
			}
		}
	}()
	return t
}

// Get reads through the tiers, backfilling the fast tier on a slow hit.
func (t *Tiered) Get(key Key) (*Record, error) {
	if rec, err := t.fast.Get(key); err == nil && rec != nil {
		return rec, nil
	}
	rec, err := t.slow.Get(key)
	if err != nil || rec == nil {
		return nil, err
	}
	_ = t.fast.Put(key, rec)
	return rec, nil
}

// Put stores into the fast tier immediately and queues the slow-tier
// write. When the queue is full the write happens synchronously rather
// than being dropped — persistence is the point of the slow tier.
func (t *Tiered) Put(key Key, rec *Record) error {
	if err := t.fast.Put(key, rec); err != nil {
		return err
	}
	select {
	case t.writes <- tieredWrite{key, rec}:
		return nil
	default:
		return t.slow.Put(key, rec)
	}
}

// Len reports the slow (authoritative) tier's record count.
func (t *Tiered) Len() int { return t.slow.Len() }

// DiskHits forwards the slow tier's hit count when it reports one.
func (t *Tiered) DiskHits() uint64 {
	if hc, ok := t.slow.(diskHitCounter); ok {
		return hc.DiskHits()
	}
	return 0
}

// Close drains pending write-behind work and closes both tiers. The
// first error observed (drain, fast close, slow close) is returned.
func (t *Tiered) Close() error {
	close(t.writes)
	t.wg.Wait()
	t.errMu.Lock()
	err := t.lastErr
	t.errMu.Unlock()
	if cerr := t.fast.Close(); err == nil {
		err = cerr
	}
	if cerr := t.slow.Close(); err == nil {
		err = cerr
	}
	return err
}
