package verify

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset/binfmt"
)

func testKey(i int) Key {
	var k Key
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	return k
}

func testRecord(i int) *Record {
	return &Record{
		Status:   StatusAssertFail,
		Log:      fmt.Sprintf("record %d failed", i),
		Strategy: "exhaustive",
		Runs:     i + 1,
		FailedAsserts: []string{
			fmt.Sprintf("p_check_%d", i),
		},
		Counterexample: &Stimulus{
			Inputs: []StimulusInput{{Name: "clk", Width: 1}, {Name: "d", Width: 4}},
			Rows:   [][]uint64{{0, uint64(i)}, {1, uint64(i) + 1}},
		},
	}
}

func TestDiskStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := ds.Put(testKey(i), testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Re-putting a key shadows the earlier frame.
	shadow := testRecord(0)
	shadow.Log = "shadowed"
	if err := ds.Put(testKey(0), shadow); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds, err = OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if got := ds.Len(); got != n {
		t.Fatalf("Len() = %d after reopen, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		rec, err := ds.Get(testKey(i))
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			t.Fatalf("record %d missing after reopen", i)
		}
		want := testRecord(i)
		if i == 0 {
			want = shadow
		}
		if a, b := mustJSON(t, rec), mustJSON(t, want); !bytes.Equal(a, b) {
			t.Fatalf("record %d after reopen:\n got %s\nwant %s", i, a, b)
		}
	}
	if miss, err := ds.Get(testKey(99)); err != nil || miss != nil {
		t.Fatalf("Get(absent) = (%v, %v), want (nil, nil)", miss, err)
	}
	if got := ds.DiskHits(); got != n {
		t.Fatalf("DiskHits() = %d, want %d", got, n)
	}
}

// TestDiskStoreTornTailTruncated is the crash-safety contract: a frame
// half-written when the process died must be truncated away on reopen,
// every earlier frame must survive, and appending must work from the
// truncation point.
func TestDiskStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ds.Put(testKey(i), testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last frame: chop a few bytes off the shard, as a crash
	// mid-append would.
	shard := shardPath(dir, 0)
	info, err := os.Stat(shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(shard, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	ds, err = OpenDiskStore(dir)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if got := ds.Len(); got != 2 {
		t.Fatalf("Len() = %d after torn-tail reopen, want 2", got)
	}
	for i := 0; i < 2; i++ {
		rec, err := ds.Get(testKey(i))
		if err != nil || rec == nil {
			t.Fatalf("clean-prefix record %d lost: (%v, %v)", i, rec, err)
		}
	}
	if rec, err := ds.Get(testKey(2)); err != nil || rec != nil {
		t.Fatalf("torn record served: (%v, %v), want (nil, nil)", rec, err)
	}

	// Appends continue from the truncated tail and survive another reopen.
	if err := ds.Put(testKey(7), testRecord(7)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	ds, err = OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if got := ds.Len(); got != 3 {
		t.Fatalf("Len() = %d after post-truncation append, want 3", got)
	}
	if rec, err := ds.Get(testKey(7)); err != nil || rec == nil {
		t.Fatalf("post-truncation append lost: (%v, %v)", rec, err)
	}
}

func TestDiskStoreTornHeaderResets(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds.Close()
	// A crash during shard creation can leave a partial magic.
	if err := os.Truncate(shardPath(dir, 0), 2); err != nil {
		t.Fatal(err)
	}
	ds, err = OpenDiskStore(dir)
	if err != nil {
		t.Fatalf("reopen after torn header: %v", err)
	}
	defer ds.Close()
	if err := ds.Put(testKey(1), testRecord(1)); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStoreBadMagicIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds.Close()
	if err := os.WriteFile(filepath.Join(dir, "verdicts-00000.bin"), []byte("not a shard, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskStore(dir); !errors.Is(err, binfmt.ErrCorrupt) {
		t.Fatalf("OpenDiskStore over garbage = %v, want ErrCorrupt", err)
	}
}

func TestDiskStoreShardRotation(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds.maxShard = 256 // force rotation quickly
	const n = 20
	for i := 0; i < n; i++ {
		if err := ds.Put(testKey(i), testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(ds.shards) < 2 {
		t.Fatalf("expected rotation past %d bytes, still %d shard(s)", ds.maxShard, len(ds.shards))
	}
	ds.Close()
	ds, err = OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if got := ds.Len(); got != n {
		t.Fatalf("Len() = %d across shards, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if rec, err := ds.Get(testKey(i)); err != nil || rec == nil {
			t.Fatalf("record %d lost across rotation: (%v, %v)", i, rec, err)
		}
	}
}

// TestRecordBinaryJSONRoundTripProperty drives random records through the
// binary codec and requires the decode to be JSON-byte-identical to the
// original — the property that makes the disk tier transparent to every
// consumer of Record's JSON form.
func TestRecordBinaryJSONRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	randStr := func(n int) string {
		b := make([]byte, rng.Intn(n))
		for i := range b {
			b[i] = byte(rng.Intn(256)) // arbitrary bytes, not just ASCII
		}
		return string(b)
	}
	for trial := 0; trial < 500; trial++ {
		rec := Record{
			Status:   Status(rng.Intn(len(statusNames))),
			Log:      randStr(200),
			DiagText: randStr(80),
			Strategy: randStr(20),
			Runs:     rng.Intn(1 << 20),
		}
		for i := rng.Intn(4); i > 0; i-- {
			rec.FailedAsserts = append(rec.FailedAsserts, randStr(24))
		}
		for i := rng.Intn(4); i > 0; i-- {
			rec.VacuousAsserts = append(rec.VacuousAsserts, randStr(24))
		}
		if rng.Intn(2) == 0 {
			cx := &Stimulus{}
			for i := rng.Intn(5); i > 0; i-- {
				cx.Inputs = append(cx.Inputs, StimulusInput{Name: randStr(12), Width: 1 + rng.Intn(64)})
			}
			for r := rng.Intn(6); r > 0; r-- {
				row := make([]uint64, len(cx.Inputs))
				for i := range row {
					row[i] = rng.Uint64()
				}
				cx.Rows = append(cx.Rows, row)
			}
			rec.Counterexample = cx
		}

		enc := binfmt.NewEncoder()
		appendRecord(enc, &rec)
		got, err := decodeRecord(enc.Bytes())
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		a, b := mustJSON(t, &rec), mustJSON(t, &got)
		if !bytes.Equal(a, b) {
			t.Fatalf("trial %d: JSON differs after binary round trip:\n orig %s\n back %s", trial, a, b)
		}
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	enc := binfmt.NewEncoder()
	appendRecord(enc, testRecord(3))
	clean := enc.Bytes()
	// Truncations must error, never panic or fabricate trailing state.
	for cut := 0; cut < len(clean); cut++ {
		if _, err := decodeRecord(clean[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded cleanly", cut, len(clean))
		}
	}
	// Random bytes must never panic (errors are fine and expected).
	for trial := 0; trial < 200; trial++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		decodeRecord(buf)
	}
	// Trailing bytes after a clean record are corruption.
	if _, err := decodeRecord(append(append([]byte{}, clean...), 0)); !errors.Is(err, binfmt.ErrCorrupt) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

func TestTieredReadThroughWriteBehind(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(NewMemStore(0), ds)
	if err := tiered.Put(testKey(1), testRecord(1)); err != nil {
		t.Fatal(err)
	}
	// The fast tier answers immediately; no disk read happens.
	rec, err := tiered.Get(testKey(1))
	if err != nil || rec == nil {
		t.Fatalf("fast-tier get: (%v, %v)", rec, err)
	}
	if got := tiered.DiskHits(); got != 0 {
		t.Fatalf("DiskHits() = %d after fast-tier hit, want 0", got)
	}
	// Close drains the write-behind queue; the record must be on disk.
	if err := tiered.Close(); err != nil {
		t.Fatal(err)
	}

	ds, err = OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tiered = NewTiered(NewMemStore(0), ds)
	defer tiered.Close()
	rec, err = tiered.Get(testKey(1))
	if err != nil || rec == nil {
		t.Fatalf("read-through get after reopen: (%v, %v)", rec, err)
	}
	if got := tiered.DiskHits(); got != 1 {
		t.Fatalf("DiskHits() = %d after slow-tier hit, want 1", got)
	}
	// The slow hit backfilled the fast tier: the next read is free.
	if _, err := tiered.Get(testKey(1)); err != nil {
		t.Fatal(err)
	}
	if got := tiered.DiskHits(); got != 1 {
		t.Fatalf("DiskHits() = %d after backfilled re-read, want 1 (fast tier should serve)", got)
	}
}

// TestGen2PromoteMovesEntry pins the lookup fix: a previous-generation hit
// must move the entry (not copy it), so len() stays exact and rotation
// cannot resurrect a stale duplicate.
func TestGen2PromoteMovesEntry(t *testing.T) {
	g := newGen2[int](2)
	g.put(testKey(1), 10)
	g.put(testKey(2), 20)
	g.put(testKey(3), 30) // rotates: {1,2} -> prev, {3} -> cur
	if got := g.len(); got != 3 {
		t.Fatalf("len() = %d, want 3", got)
	}
	if v, ok := g.get(testKey(1)); !ok || v != 10 {
		t.Fatalf("get(1) = (%d, %v)", v, ok)
	}
	if got := g.len(); got != 3 {
		t.Fatalf("len() = %d after promotion, want 3 (promotion must not duplicate)", got)
	}
	if _, ok := g.prev[testKey(1)]; ok {
		t.Fatal("promoted key still resident in previous generation")
	}
	// remove with a stale identity must not evict the fresh value.
	g.remove(testKey(1), 99)
	if _, ok := g.get(testKey(1)); !ok {
		t.Fatal("identity-mismatched remove evicted a live entry")
	}
	g.remove(testKey(1), 10)
	if _, ok := g.get(testKey(1)); ok {
		t.Fatal("matching remove left the entry resident")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
