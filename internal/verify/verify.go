// Package verify is the layered verification service behind every
// insert-fix/recompile/bounded-model-check sequence in the reproduction.
// The paper's whole protocol — Stage-2 bug validation, SVA candidate
// filtering, judging the n=20 evaluation responses, and the iterative
// repair loop — reduces to one expensive primitive: take source text (and
// optionally a candidate assertion set), compile it, and bounded-model-
// check its assertions. This package owns that primitive behind a single
// service API, structured as four layers:
//
//   - Record layer: the outcome of a check splits into a serializable
//     Record (status, logs, diagnostic text, failed/vacuous assertion
//     names, the counterexample stimulus) and the in-memory warm part of
//     a Verdict (the elaborated *compile.Design with its simulator plan,
//     the *formal.Result). Callers that only need pass/fail use
//     CheckRecord and never pay for re-elaboration; callers that diff or
//     re-simulate use Check and get the warm design.
//   - Store layer: a Store holds Records by content hash. MemStore is the
//     two-generation in-memory cache; DiskStore is an append-only,
//     crash-safe persistent log (built on internal/dataset/binfmt
//     framing); Tiered layers one over the other read-through/
//     write-behind. A Service with a store answers repeated record
//     checks across process restarts without recomputing.
//   - Execution layer: Check and CheckRecord take a context. The context
//     threads through formal.Check into the simulator run loops, so a
//     disconnected client or an expired deadline stops a 2^16 exhaustive
//     enumeration mid-flight. Concurrent duplicate requests are coalesced
//     into one computation (singleflight) that keeps running while any
//     waiter remains; when the last waiter cancels, the computation is
//     cancelled and the next requester recomputes from scratch.
//   - Front end: cmd/serve exposes the Service over HTTP/JSON with
//     admission control, per-client rate limits and lane-batched
//     stimulus checks.
//
// The Service also keeps the two properties the original in-process cache
// had: a content-addressed key (hash of source, candidate assertion set
// and normalised options) and a bounded worker pool, so callers can fan
// out freely without oversubscribing the machine. Cached verdicts are
// shared between callers and must be treated as read-only.
package verify

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/compile"
	"repro/internal/formal"
	"repro/internal/sim"
	"repro/internal/verilog"
)

// Options configures one check. The formal fields mirror formal.Options;
// zero values take the formal checker's defaults, and the cache key is
// computed from the normalised (defaults-applied) form so e.g. Depth 0 and
// Depth 16 address the same entry.
type Options struct {
	// Seed makes the random stimulus phase deterministic.
	Seed int64
	// Depth is the bound in clock cycles (default 16).
	Depth int
	// RandomRuns bounds the random stimulus phase (default 48; negative —
	// formal.NoRandom — disables the phase).
	RandomRuns int
	// MaxExhaustiveBits caps full input-sequence enumeration (default 16).
	MaxExhaustiveBits int
	// MaxConstBits caps constant-input enumeration (default 10).
	MaxConstBits int
	// FourState checks in the four-state value domain (formal.Options.
	// FourState): uninitialised/unreset registers read x, and x reaching an
	// assertion fails it. Required to catch the reset-removal and
	// initialisation-deletion bug classes, which are invisible to the
	// two-state default.
	FourState bool
	// Lanes batches formal stimuli through the lane-parallel simulator
	// (formal.Options.Lanes): up to Lanes stimuli per run, max 64. Zero (the
	// default) and one mean scalar mode. Because lane checks are
	// byte-identical to scalar ones by construction, Lanes still
	// participates in the cache key — a divergence bug must never let a
	// lane-mode result satisfy a scalar-mode request, or vice versa.
	Lanes int
	// CompileOnly stops after elaboration: the verdict carries the design
	// but no formal result. Used where a caller needs a compiled design
	// (e.g. as the golden side of a behavioural diff) without checking it.
	CompileOnly bool
}

func (o Options) formal() formal.Options {
	return formal.Options{
		Seed:              o.Seed,
		Depth:             o.Depth,
		RandomRuns:        o.RandomRuns,
		MaxExhaustiveBits: o.MaxExhaustiveBits,
		MaxConstBits:      o.MaxConstBits,
		FourState:         o.FourState,
		Lanes:             o.Lanes,
	}
}

// Status classifies a verdict.
type Status int

// Verdict statuses.
const (
	// StatusPass: the design compiled and every assertion held within the
	// bound (or CompileOnly was set and compilation succeeded).
	StatusPass Status = iota
	// StatusCompileError: parsing or elaboration failed.
	StatusCompileError
	// StatusAssertFail: the design compiled but an assertion failed.
	StatusAssertFail
	// StatusError: the check itself failed (e.g. a combinational loop made
	// the design unsimulatable); the accompanying error is non-nil.
	StatusError
)

var statusNames = [...]string{"pass", "compile-error", "assert-fail", "error"}

// String names the status.
func (s Status) String() string { return statusNames[s] }

// MarshalJSON encodes the status by name, so persisted records and the
// cmd/serve wire format stay readable and stable if the enum is ever
// reordered.
func (s Status) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a status name.
func (s *Status) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range statusNames {
		if n == name {
			*s = Status(i)
			return nil
		}
	}
	return fmt.Errorf("verify: unknown status %q", name)
}

// StimulusInput names one driven input column of a counterexample.
type StimulusInput struct {
	Name  string `json:"name"`
	Width int    `json:"width"`
}

// Stimulus is a replayable input sequence: row c holds the value driven
// on each input during cycle c, in column order. It is the serializable
// form of the counterexample trace's input columns.
type Stimulus struct {
	Inputs []StimulusInput `json:"inputs"`
	Rows   [][]uint64      `json:"rows"`
}

// Record is the serializable outcome of one check: everything a caller
// that only needs pass/fail (plus logs and counterexample data) can use
// without an elaborated design in memory. Records round-trip through
// JSON and the binfmt codec byte-identically and are what the store
// layer persists.
type Record struct {
	Status Status `json:"status"`
	// Log is the caller-facing record: compiler diagnostics or parse error
	// on compile failure, the verifier log otherwise.
	Log string `json:"log,omitempty"`
	// DiagText is the formatted compiler diagnostics (empty when the
	// compiler emitted none).
	DiagText string `json:"diag_text,omitempty"`
	// Strategy and Runs record how the formal checker explored the state
	// space (empty/zero for compile errors and compile-only checks).
	Strategy string `json:"strategy,omitempty"`
	Runs     int    `json:"runs,omitempty"`
	// FailedAsserts names the assertions that failed (the bounded check
	// stops at the first failure, so at most one today).
	FailedAsserts []string `json:"failed_asserts,omitempty"`
	// VacuousAsserts lists assertions whose antecedent never matched on
	// any explored trace.
	VacuousAsserts []string `json:"vacuous_asserts,omitempty"`
	// Counterexample is the failing input sequence (nil when no assertion
	// failed).
	Counterexample *Stimulus `json:"counterexample,omitempty"`
}

// Passed reports whether the check succeeded end to end.
func (r Record) Passed() bool { return r.Status == StatusPass }

// Vacuous lists assertions whose antecedent never matched (empty when the
// check did not run).
func (r Record) Vacuous() []string { return r.VacuousAsserts }

// Verdict is the outcome of one check: the serializable Record plus the
// warm in-memory parts. Verdicts returned from the cache are shared;
// callers must not mutate the design or formal result.
type Verdict struct {
	Record
	// Design is the elaborated design; nil when compilation failed. It
	// carries internal/sim's compiled execution plan, warmed under the
	// worker slot, so a cache hit hands back a design that is ready to
	// simulate without re-walking the AST.
	Design *compile.Design
	// CompileErr is the parse error when parsing failed (nil for
	// elaboration failures, which are reported through Diags).
	CompileErr error
	// Diags holds the compiler diagnostics (which include at least one
	// error when Status is StatusCompileError and CompileErr is nil).
	Diags []compile.Diagnostic
	// Formal is the bounded-check result; nil on compile errors, check
	// errors and compile-only verdicts.
	Formal *formal.Result
	// Cached reports whether this verdict was answered from the cache.
	Cached bool
}

// withAssertions substitutes a candidate assertion set into the source:
// the source set is parsed, its top module is stripped of its own
// property/assert items, and the candidates are appended there. Child
// modules keep their items untouched. A parse failure or an ambiguous top
// is a compile-error verdict.
func withAssertions(src string, assertions []verilog.Item) (string, Verdict, bool) {
	set, err := verilog.ParseSet(src)
	if err != nil {
		return "", compileErrVerdict(err), false
	}
	top, err := set.Top()
	if err != nil {
		return "", compileErrVerdict(err), false
	}
	var kept []verilog.Item
	for _, it := range top.Items {
		switch it.(type) {
		case *verilog.PropertyDecl, *verilog.AssertItem:
			continue
		}
		kept = append(kept, it)
	}
	top.Items = kept
	for _, it := range assertions {
		top.Items = append(top.Items, verilog.CloneItem(it))
	}
	return verilog.PrintSet(set), Verdict{}, true
}

func compileErrVerdict(err error) Verdict {
	return Verdict{
		Record:     Record{Status: StatusCompileError, Log: err.Error()},
		CompileErr: err,
	}
}

// extractStimulus lifts the input columns of a counterexample trace into
// the serializable stimulus form, in input declaration order (clock and
// reset columns included, so the sequence is replayable as driven).
func extractStimulus(d *compile.Design, tr *sim.Trace) *Stimulus {
	if tr == nil {
		return nil
	}
	ins := d.Inputs(false)
	if len(ins) == 0 || tr.Len() == 0 {
		return nil
	}
	st := &Stimulus{Inputs: make([]StimulusInput, len(ins)), Rows: make([][]uint64, tr.Len())}
	for i, in := range ins {
		st.Inputs[i] = StimulusInput{Name: in.Name, Width: in.Width}
	}
	for c := 0; c < tr.Len(); c++ {
		row := make([]uint64, len(ins))
		for i, in := range ins {
			row[i], _ = tr.Value(c, in.Name)
		}
		st.Rows[c] = row
	}
	return st
}

// run is the uncached (optional substitution ->) compile -> formal-check
// sequence; it executes inside a worker slot under the compute context.
func run(ctx context.Context, src string, assertions []verilog.Item, opts Options) (Verdict, error) {
	if len(assertions) > 0 {
		var verdict Verdict
		var ok bool
		src, verdict, ok = withAssertions(src, assertions)
		if !ok {
			return verdict, nil
		}
	}
	d, diags, err := compile.Compile(src)
	if err != nil {
		return compileErrVerdict(err), nil
	}
	if compile.HasErrors(diags) || d == nil {
		log := compile.FormatDiags(diags)
		return Verdict{
			Record: Record{Status: StatusCompileError, Log: log, DiagText: log},
			Diags:  diags,
		}, nil
	}
	diagText := ""
	if len(diags) > 0 {
		diagText = compile.FormatDiags(diags)
	}
	// Warm the simulator's compiled execution plan while we hold a worker
	// slot. The plan lives on the design, so cached verdicts (including
	// compile-only goldens later fed to formal.Differ) carry a ready-to-run
	// plan with them instead of rebuilding it on first simulation.
	sim.PlanOf(d)
	if opts.CompileOnly {
		return Verdict{
			Record: Record{Status: StatusPass, DiagText: diagText},
			Design: d, Diags: diags,
		}, nil
	}
	res, err := formal.Check(ctx, d, opts.formal())
	if err != nil {
		return Verdict{
			Record: Record{Status: StatusError, Log: err.Error(), DiagText: diagText},
			Design: d, Diags: diags,
		}, err
	}
	rec := Record{
		Log:            res.Log,
		DiagText:       diagText,
		Strategy:       res.Strategy,
		Runs:           res.Runs,
		VacuousAsserts: append([]string(nil), res.VacuousAsserts...),
	}
	if res.Pass {
		rec.Status = StatusPass
	} else {
		rec.Status = StatusAssertFail
		if res.Failure != nil {
			rec.FailedAsserts = []string{res.Failure.Assert.Name}
		}
		rec.Counterexample = extractStimulus(d, res.Trace)
	}
	return Verdict{Record: rec, Design: d, Diags: diags, Formal: res}, nil
}

// cacheKey hashes the source, the candidate assertion set and the
// normalised options. The assertion items are hashed through their printed
// form (printing a throwaway module is cheap relative to re-printing and
// re-parsing the full design, which happens only on a miss).
func cacheKey(src string, assertions []verilog.Item, opts Options) Key {
	f := opts.formal().Normalized()
	var meta [8 * 7]byte
	binary.LittleEndian.PutUint64(meta[0:], uint64(f.Seed))
	binary.LittleEndian.PutUint64(meta[8:], uint64(f.Depth))
	binary.LittleEndian.PutUint64(meta[16:], uint64(f.RandomRuns))
	binary.LittleEndian.PutUint64(meta[24:], uint64(f.MaxExhaustiveBits))
	binary.LittleEndian.PutUint64(meta[32:], uint64(f.MaxConstBits))
	if opts.CompileOnly {
		meta[40] = 1
	}
	if f.FourState {
		meta[41] = 1
	}
	binary.LittleEndian.PutUint64(meta[48:], uint64(f.Lanes))
	h := sha256.New()
	h.Write(meta[:])
	h.Write([]byte(src))
	if len(assertions) > 0 {
		h.Write([]byte{0})
		h.Write([]byte(verilog.Print(&verilog.Module{Name: "__assertions__", Items: assertions})))
	}
	var key Key
	h.Sum(key[:0])
	return key
}
