// Package verify is the unified verification service behind every
// insert-fix/recompile/bounded-model-check sequence in the reproduction.
// The paper's whole protocol — Stage-2 bug validation, SVA candidate
// filtering, judging the n=20 evaluation responses, and the iterative
// repair loop — reduces to one expensive primitive: take source text (and
// optionally a candidate assertion set), compile it, and bounded-model-
// check its assertions. This package owns that primitive behind a single
// API, Service.Check, with two properties the individual call sites used
// to approximate independently or not at all:
//
//   - a content-addressed result cache: the key is a hash of the source,
//     the candidate assertion set, and the normalised check options, so
//     repeated identical checks (the common case — many of the 20 samples
//     per evaluation case propose the same fix) are answered without
//     recompiling or re-simulating, and concurrent duplicate requests are
//     coalesced into one computation (singleflight). The cache is
//     generational: the recent working set stays resident while one-shot
//     checks (unique mutants of a full dataset build) age out, bounding
//     memory for arbitrarily long runs;
//   - a bounded worker pool: any number of goroutines may call Check, but
//     at most Workers checks compute at once, so callers can fan out
//     freely (parallel response judging, parallel mutant validation)
//     without oversubscribing the machine.
//
// Verdicts carry the elaborated design and the formal result so callers
// that need more than pass/fail (counterexample logs, vacuity sets, the
// design for behavioural diffing) pay nothing extra. Designs in verdicts
// also carry internal/sim's compiled slot-indexed execution plan, warmed
// here under the worker slot: a cache hit hands back a design that is
// ready to simulate without re-walking the AST. Cached verdicts are
// shared between callers and must be treated as read-only.
package verify

import (
	"crypto/sha256"
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/compile"
	"repro/internal/formal"
	"repro/internal/sim"
	"repro/internal/verilog"
)

// Options configures one check. The formal fields mirror formal.Options;
// zero values take the formal checker's defaults, and the cache key is
// computed from the normalised (defaults-applied) form so e.g. Depth 0 and
// Depth 16 address the same entry.
type Options struct {
	// Seed makes the random stimulus phase deterministic.
	Seed int64
	// Depth is the bound in clock cycles (default 16).
	Depth int
	// RandomRuns bounds the random stimulus phase (default 48; negative —
	// formal.NoRandom — disables the phase).
	RandomRuns int
	// MaxExhaustiveBits caps full input-sequence enumeration (default 16).
	MaxExhaustiveBits int
	// MaxConstBits caps constant-input enumeration (default 10).
	MaxConstBits int
	// FourState checks in the four-state value domain (formal.Options.
	// FourState): uninitialised/unreset registers read x, and x reaching an
	// assertion fails it. Required to catch the reset-removal and
	// initialisation-deletion bug classes, which are invisible to the
	// two-state default.
	FourState bool
	// Lanes batches formal stimuli through the lane-parallel simulator
	// (formal.Options.Lanes): up to Lanes stimuli per run, max 64. Zero (the
	// default) and one mean scalar mode. Because lane checks are
	// byte-identical to scalar ones by construction, Lanes still
	// participates in the cache key — a divergence bug must never let a
	// lane-mode result satisfy a scalar-mode request, or vice versa.
	Lanes int
	// CompileOnly stops after elaboration: the verdict carries the design
	// but no formal result. Used where a caller needs a compiled design
	// (e.g. as the golden side of a behavioural diff) without checking it.
	CompileOnly bool
}

func (o Options) formal() formal.Options {
	return formal.Options{
		Seed:              o.Seed,
		Depth:             o.Depth,
		RandomRuns:        o.RandomRuns,
		MaxExhaustiveBits: o.MaxExhaustiveBits,
		MaxConstBits:      o.MaxConstBits,
		FourState:         o.FourState,
		Lanes:             o.Lanes,
	}
}

// Status classifies a verdict.
type Status int

// Verdict statuses.
const (
	// StatusPass: the design compiled and every assertion held within the
	// bound (or CompileOnly was set and compilation succeeded).
	StatusPass Status = iota
	// StatusCompileError: parsing or elaboration failed.
	StatusCompileError
	// StatusAssertFail: the design compiled but an assertion failed.
	StatusAssertFail
	// StatusError: the check itself failed (e.g. a combinational loop made
	// the design unsimulatable); the accompanying error is non-nil.
	StatusError
)

var statusNames = [...]string{"pass", "compile-error", "assert-fail", "error"}

// String names the status.
func (s Status) String() string { return statusNames[s] }

// Verdict is the outcome of one check. Verdicts returned from the cache
// are shared; callers must not mutate the design or formal result.
type Verdict struct {
	Status Status
	// Design is the elaborated design; nil when compilation failed.
	Design *compile.Design
	// CompileErr is the parse error when parsing failed (nil for
	// elaboration failures, which are reported through Diags).
	CompileErr error
	// Diags holds the compiler diagnostics (which include at least one
	// error when Status is StatusCompileError and CompileErr is nil).
	Diags []compile.Diagnostic
	// Formal is the bounded-check result; nil on compile errors, check
	// errors and compile-only verdicts.
	Formal *formal.Result
	// Log is the caller-facing record: compiler diagnostics or parse error
	// on compile failure, the verifier log otherwise.
	Log string
	// Cached reports whether this verdict was answered from the cache.
	Cached bool
}

// Passed reports whether the check succeeded end to end.
func (v Verdict) Passed() bool { return v.Status == StatusPass }

// Vacuous lists assertions whose antecedent never matched (empty when the
// check did not run).
func (v Verdict) Vacuous() []string {
	if v.Formal == nil {
		return nil
	}
	return v.Formal.VacuousAsserts
}

// maxGenEntries bounds one cache generation. The cache keeps the current
// and the previous generation, so memory is capped at roughly twice this
// many verdicts while the recent working set (the fixes an evaluation or
// repair loop keeps re-checking) stays resident. One-shot checks — e.g.
// the tens of thousands of unique mutants of a full dataset build — age
// out instead of accumulating for the life of the process.
const maxGenEntries = 4096

// Service runs checks behind the shared cache and worker pool. It is safe
// for concurrent use by any number of goroutines.
type Service struct {
	sem        chan struct{}
	mu         sync.Mutex
	cur, prev  map[[sha256.Size]byte]*entry
	maxEntries int

	hits   atomic.Uint64
	misses atomic.Uint64
}

// entry is one cache slot. The first requester computes the verdict and
// closes done; later requesters for the same key block on done and share
// the result.
type entry struct {
	done    chan struct{}
	verdict Verdict
	err     error
}

// New returns a service whose pool runs at most workers checks at once;
// workers <= 0 means GOMAXPROCS.
func New(workers int) *Service {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Service{
		sem:        make(chan struct{}, workers),
		cur:        map[[sha256.Size]byte]*entry{},
		maxEntries: maxGenEntries,
	}
}

var (
	defaultOnce sync.Once
	defaultSvc  *Service
)

// Default returns the process-wide shared service. All pipeline stages use
// it unless handed a dedicated instance, so a fix verified while judging
// responses is already cached when the repair loop re-verifies it.
func Default() *Service {
	defaultOnce.Do(func() { defaultSvc = New(0) })
	return defaultSvc
}

// Stats reports cache hits (including coalesced concurrent duplicates) and
// misses (computations) so far.
func (s *Service) Stats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// Len returns the number of cached verdicts (both generations).
func (s *Service) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.cur)
	for k := range s.prev {
		if _, dup := s.cur[k]; !dup {
			n++
		}
	}
	return n
}

// lookup finds or installs the cache entry for a key. The second return is
// true when the entry already existed (the caller must wait on done rather
// than compute). Inserting into a full current generation rotates it to
// previous, aging the oldest generation out.
func (s *Service) lookup(key [sha256.Size]byte) (*entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, hit := s.cur[key]; hit {
		return e, true
	}
	if e, hit := s.prev[key]; hit {
		s.cur[key] = e // promote: keep the working set in the young generation
		return e, true
	}
	if len(s.cur) >= s.maxEntries {
		s.prev = s.cur
		s.cur = make(map[[sha256.Size]byte]*entry, s.maxEntries)
	}
	e := &entry{done: make(chan struct{})}
	s.cur[key] = e
	return e, false
}

// Check compiles src and bounded-model-checks its assertions. When
// assertions is non-empty the module's own property/assert items are
// replaced by the given ones first (the SVA-candidate validation flow);
// otherwise the embedded assertions are checked. The returned error is
// non-nil only for StatusError verdicts; compile failures and assertion
// failures are ordinary verdicts. Results are cached by content — source,
// assertion set and normalised options. A cache hit never parses or
// prints the design itself; hashing a candidate assertion set does print
// those items (small next to the design), and substitution into the
// design happens only on a miss.
func (s *Service) Check(src string, assertions []verilog.Item, opts Options) (Verdict, error) {
	e, hit := s.lookup(cacheKey(src, assertions, opts))
	if hit {
		<-e.done
		s.hits.Add(1)
		v := e.verdict
		v.Cached = true
		return v, e.err
	}
	s.misses.Add(1)
	s.sem <- struct{}{}
	e.verdict, e.err = run(src, assertions, opts)
	<-s.sem
	close(e.done)
	return e.verdict, e.err
}

// withAssertions substitutes a candidate assertion set into the source:
// the source set is parsed, its top module is stripped of its own
// property/assert items, and the candidates are appended there. Child
// modules keep their items untouched. A parse failure or an ambiguous top
// is a compile-error verdict.
func withAssertions(src string, assertions []verilog.Item) (string, Verdict, bool) {
	set, err := verilog.ParseSet(src)
	if err != nil {
		return "", Verdict{Status: StatusCompileError, CompileErr: err, Log: err.Error()}, false
	}
	top, err := set.Top()
	if err != nil {
		return "", Verdict{Status: StatusCompileError, CompileErr: err, Log: err.Error()}, false
	}
	var kept []verilog.Item
	for _, it := range top.Items {
		switch it.(type) {
		case *verilog.PropertyDecl, *verilog.AssertItem:
			continue
		}
		kept = append(kept, it)
	}
	top.Items = kept
	for _, it := range assertions {
		top.Items = append(top.Items, verilog.CloneItem(it))
	}
	return verilog.PrintSet(set), Verdict{}, true
}

// run is the uncached (optional substitution ->) compile -> formal-check
// sequence; it executes inside a worker slot.
func run(src string, assertions []verilog.Item, opts Options) (Verdict, error) {
	if len(assertions) > 0 {
		var verdict Verdict
		var ok bool
		src, verdict, ok = withAssertions(src, assertions)
		if !ok {
			return verdict, nil
		}
	}
	d, diags, err := compile.Compile(src)
	if err != nil {
		return Verdict{Status: StatusCompileError, CompileErr: err, Log: err.Error()}, nil
	}
	if compile.HasErrors(diags) || d == nil {
		return Verdict{Status: StatusCompileError, Diags: diags, Log: compile.FormatDiags(diags)}, nil
	}
	// Warm the simulator's compiled execution plan while we hold a worker
	// slot. The plan lives on the design, so cached verdicts (including
	// compile-only goldens later fed to formal.Differ) carry a ready-to-run
	// plan with them instead of rebuilding it on first simulation.
	sim.PlanOf(d)
	if opts.CompileOnly {
		return Verdict{Status: StatusPass, Design: d, Diags: diags}, nil
	}
	res, err := formal.Check(d, opts.formal())
	if err != nil {
		return Verdict{Status: StatusError, Design: d, Diags: diags, Log: err.Error()}, err
	}
	v := Verdict{Design: d, Diags: diags, Formal: res, Log: res.Log}
	if res.Pass {
		v.Status = StatusPass
	} else {
		v.Status = StatusAssertFail
	}
	return v, nil
}

// cacheKey hashes the source, the candidate assertion set and the
// normalised options. The assertion items are hashed through their printed
// form (printing a throwaway module is cheap relative to re-printing and
// re-parsing the full design, which happens only on a miss).
func cacheKey(src string, assertions []verilog.Item, opts Options) [sha256.Size]byte {
	f := opts.formal().Normalized()
	var meta [8 * 7]byte
	binary.LittleEndian.PutUint64(meta[0:], uint64(f.Seed))
	binary.LittleEndian.PutUint64(meta[8:], uint64(f.Depth))
	binary.LittleEndian.PutUint64(meta[16:], uint64(f.RandomRuns))
	binary.LittleEndian.PutUint64(meta[24:], uint64(f.MaxExhaustiveBits))
	binary.LittleEndian.PutUint64(meta[32:], uint64(f.MaxConstBits))
	if opts.CompileOnly {
		meta[40] = 1
	}
	if f.FourState {
		meta[41] = 1
	}
	binary.LittleEndian.PutUint64(meta[48:], uint64(f.Lanes))
	h := sha256.New()
	h.Write(meta[:])
	h.Write([]byte(src))
	if len(assertions) > 0 {
		h.Write([]byte{0})
		h.Write([]byte(verilog.Print(&verilog.Module{Name: "__assertions__", Items: assertions})))
	}
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}
