package verify

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/verilog"
)

// passSrc is a design whose assertion holds: q follows a one cycle later.
const passSrc = `module vtest(
    input clk,
    input a,
    output reg q
);
    always @(posedge clk) begin
        q <= a;
    end
    property p_follow;
        @(posedge clk) a |=> q;
    endproperty
    p_follow_assertion: assert property (p_follow)
        else $error("q must follow a");
endmodule
`

// failSrc breaks the same assertion: q is stuck at zero.
const failSrc = `module vtest(
    input clk,
    input a,
    output reg q
);
    always @(posedge clk) begin
        q <= 0;
    end
    property p_follow;
        @(posedge clk) a |=> q;
    endproperty
    p_follow_assertion: assert property (p_follow)
        else $error("q must follow a");
endmodule
`

// elabErrSrc references an undeclared identifier (elaboration error).
const elabErrSrc = `module vtest(
    input clk,
    input a,
    output reg q
);
    always @(posedge clk) begin
        q <= b;
    end
endmodule
`

// parseErrSrc does not parse at all.
const parseErrSrc = `module (((`

// vacuousSrc has an assertion whose antecedent can never match.
const vacuousSrc = `module vtest(
    input clk,
    input a,
    output reg q
);
    always @(posedge clk) begin
        q <= a;
    end
    property p_vac;
        @(posedge clk) a && !a |=> q;
    endproperty
    p_vac_assertion: assert property (p_vac)
        else $error("unreachable");
endmodule
`

func TestCheckPassAndCacheHit(t *testing.T) {
	svc := New(2)
	v1, err := svc.Check(context.Background(), passSrc, nil, Options{Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Status != StatusPass || !v1.Passed() {
		t.Fatalf("status = %v, want pass; log:\n%s", v1.Status, v1.Log)
	}
	if v1.Cached {
		t.Error("first check reported as cached")
	}
	v2, err := svc.Check(context.Background(), passSrc, nil, Options{Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached {
		t.Error("second identical check missed the cache")
	}
	if v2.Status != v1.Status || v2.Log != v1.Log {
		t.Error("cached verdict differs from fresh verdict")
	}
	if m := svc.Metrics(); m.Hits != 1 || m.Misses != 1 {
		t.Errorf("metrics = %d hits, %d misses; want 1, 1", m.Hits, m.Misses)
	}
	if svc.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", svc.Len())
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	svc := New(2)
	base := Options{Seed: 1, Depth: 8, RandomRuns: 4}
	variants := []struct {
		name string
		src  string
		opts Options
	}{
		{"base", passSrc, base},
		{"source", failSrc, base},
		{"seed", passSrc, Options{Seed: 2, Depth: 8, RandomRuns: 4}},
		{"depth", passSrc, Options{Seed: 1, Depth: 9, RandomRuns: 4}},
		{"runs", passSrc, Options{Seed: 1, Depth: 8, RandomRuns: 5}},
		{"compile-only", passSrc, Options{Seed: 1, Depth: 8, RandomRuns: 4, CompileOnly: true}},
	}
	for _, v := range variants {
		if _, err := svc.Check(context.Background(), v.src, nil, v.opts); err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
	}
	if m := svc.Metrics(); m.Misses != uint64(len(variants)) {
		t.Errorf("misses = %d, want %d (every variant must address its own entry)", m.Misses, len(variants))
	}
	// Replaying every variant must be pure hits.
	for _, v := range variants {
		got, err := svc.Check(context.Background(), v.src, nil, v.opts)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if !got.Cached {
			t.Errorf("%s: replay missed the cache", v.name)
		}
	}
	if m := svc.Metrics(); m.Hits != uint64(len(variants)) {
		t.Errorf("hits = %d, want %d", m.Hits, len(variants))
	}
}

func TestOptionsNormalisedForKey(t *testing.T) {
	svc := New(2)
	if _, err := svc.Check(context.Background(), passSrc, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	// Depth 16 and RandomRuns 48 are the formal defaults: same entry.
	v, err := svc.Check(context.Background(), passSrc, nil, Options{Depth: 16, RandomRuns: 48})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Cached {
		t.Error("defaulted and explicit-default options should share a cache entry")
	}
}

func TestStatusClassification(t *testing.T) {
	svc := New(2)

	v, err := svc.Check(context.Background(), elabErrSrc, nil, Options{Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusCompileError || v.CompileErr != nil || len(v.Diags) == 0 {
		t.Errorf("elaboration error misclassified: %+v", v.Status)
	}

	v, err = svc.Check(context.Background(), parseErrSrc, nil, Options{Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusCompileError || v.CompileErr == nil {
		t.Errorf("parse error misclassified: %+v", v.Status)
	}

	v, err = svc.Check(context.Background(), failSrc, nil, Options{Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusAssertFail || v.Formal == nil || v.Formal.Failure == nil {
		t.Errorf("assertion failure misclassified: %v", v.Status)
	}
	if v.Log == "" {
		t.Error("failing verdict carries no log")
	}

	v, err = svc.Check(context.Background(), vacuousSrc, nil, Options{Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusPass || len(v.Vacuous()) == 0 {
		t.Errorf("vacuous assertion not reported: status=%v vacuous=%v", v.Status, v.Vacuous())
	}
}

func TestCompileOnly(t *testing.T) {
	svc := New(2)
	v, err := svc.Check(context.Background(), failSrc, nil, Options{CompileOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusPass || v.Design == nil || v.Formal != nil {
		t.Errorf("compile-only verdict: status=%v design=%v formal=%v", v.Status, v.Design != nil, v.Formal != nil)
	}
}

// TestAssertionSubstitution exercises the candidate-insertion flow: the
// module's own assertions are replaced by the supplied set, so a failing
// embedded assertion is invisible when a passing candidate is checked.
func TestAssertionSubstitution(t *testing.T) {
	donor, err := verilog.Parse(passSrc)
	if err != nil {
		t.Fatal(err)
	}
	var items []verilog.Item
	for _, it := range donor.Items {
		switch it.(type) {
		case *verilog.PropertyDecl, *verilog.AssertItem:
			items = append(items, it)
		}
	}
	if len(items) != 2 {
		t.Fatalf("donor items = %d, want 2", len(items))
	}
	svc := New(2)
	// failSrc has logic q<=0 whose embedded assertion fails; substituting
	// does not change the logic, so the candidate must still fail...
	v, err := svc.Check(context.Background(), failSrc, items, Options{Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusAssertFail {
		t.Errorf("substituted candidate on broken logic: %v, want assert-fail", v.Status)
	}
	// ...while on the correct logic the same candidate passes.
	v, err = svc.Check(context.Background(), passSrc, items, Options{Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusPass {
		t.Errorf("substituted candidate on correct logic: %v, want pass; log:\n%s", v.Status, v.Log)
	}
	// The assertion set is part of the cache key: nil-assertion checks of
	// the same source are separate entries.
	before := svc.Metrics().Hits
	if _, err := svc.Check(context.Background(), passSrc, nil, Options{Depth: 8}); err != nil {
		t.Fatal(err)
	}
	if after := svc.Metrics().Hits; after != before {
		t.Error("embedded-assertion check unexpectedly hit the candidate entry")
	}
}

// TestConcurrentSingleflight hammers one service from many goroutines
// (run under -race in CI): every distinct (source, options) pair must be
// computed exactly once, and all callers must agree on the verdict.
func TestConcurrentSingleflight(t *testing.T) {
	svc := New(4)
	sources := []string{passSrc, failSrc, elabErrSrc, vacuousSrc}
	const loops = 16
	verdicts := make([][]Status, len(sources))
	for i := range verdicts {
		verdicts[i] = make([]Status, loops)
	}
	var wg sync.WaitGroup
	for g := 0; g < loops; g++ {
		for si := range sources {
			g, si := g, si
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err := svc.Check(context.Background(), sources[si], nil, Options{Depth: 8})
				if err != nil {
					t.Errorf("check: %v", err)
					return
				}
				verdicts[si][g] = v.Status
			}()
		}
	}
	wg.Wait()
	if m := svc.Metrics(); m.Misses != uint64(len(sources)) {
		t.Errorf("misses = %d, want %d (singleflight must coalesce duplicates)", m.Misses, len(sources))
	}
	for si := range sources {
		for g := 1; g < loops; g++ {
			if verdicts[si][g] != verdicts[si][0] {
				t.Fatalf("source %d: goroutines disagree: %v vs %v", si, verdicts[si][g], verdicts[si][0])
			}
		}
	}
}

// TestPoolOfOneDoesNotDeadlock proves fan-out beyond the worker count is
// safe: 16 concurrent checks through a single-worker pool all complete.
func TestPoolOfOneDoesNotDeadlock(t *testing.T) {
	svc := New(1)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := fmt.Sprintf("%s// variant %d\n", passSrc, g%4)
			if _, err := svc.Check(context.Background(), src, nil, Options{Depth: 6}); err != nil {
				t.Errorf("check: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestGenerationalEviction shrinks the generation bound and proves old
// one-shot entries age out while a re-requested entry is promoted and
// survives a rotation.
func TestGenerationalEviction(t *testing.T) {
	svc := New(2)
	svc.entries.max = 4
	srcAt := func(i int) string { return fmt.Sprintf("%s// fill %d\n", passSrc, i) }

	if _, err := svc.Check(context.Background(), passSrc, nil, Options{Depth: 6}); err != nil {
		t.Fatal(err)
	}
	// Keep passSrc hot (promoted on hit) while filling two generations.
	for i := 0; i < 10; i++ {
		if _, err := svc.Check(context.Background(), srcAt(i), nil, Options{Depth: 6}); err != nil {
			t.Fatal(err)
		}
		if v, err := svc.Check(context.Background(), passSrc, nil, Options{Depth: 6}); err != nil || !v.Cached {
			t.Fatalf("hot entry evicted after %d inserts (err=%v)", i+1, err)
		}
	}
	if n := svc.Len(); n > 2*svc.entries.max {
		t.Errorf("cache holds %d entries, want <= %d (bounded)", n, 2*svc.entries.max)
	}
	// The earliest filler must have aged out: re-checking it is a miss.
	missesBefore := svc.Metrics().Misses
	if _, err := svc.Check(context.Background(), srcAt(0), nil, Options{Depth: 6}); err != nil {
		t.Fatal(err)
	}
	if missesAfter := svc.Metrics().Misses; missesAfter != missesBefore+1 {
		t.Error("oldest one-shot entry was still resident after two rotations")
	}
}

func TestDefaultIsShared(t *testing.T) {
	if Default() != Default() {
		t.Error("Default must return the process-wide instance")
	}
}
