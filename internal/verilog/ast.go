package verilog

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is any Verilog expression node.
type Expr interface {
	exprNode()
	// Span returns the source position of the expression's first token.
	Span() Pos
}

// Ident is a simple identifier reference.
type Ident struct {
	Name string
	Pos  Pos
}

// Number is a numeric literal. Width 0 means unsized (treated as 32-bit in
// self-determined contexts). Base is 'b', 'o', 'd' or 'h'; 0 means a plain
// decimal literal without a base specifier.
//
// XMask and ZMask record which bits were written as x and z digits (a '?'
// digit is a z). Value always holds 0 at those bit positions, so two-state
// consumers that read Value alone see the historical "x/z decode as 0"
// behaviour, while the four-state simulator folds XMask|ZMask into the
// unknown plane. The masks are positional: digits cover exactly the bits
// they are written over (1 bit in base b, 3 in o, 4 in h, the whole literal
// for 'dx/'dz); the IEEE left-extension of a leading x/z digit is not
// applied, a documented substitution.
type Number struct {
	Width int
	Base  byte
	Value uint64
	XMask uint64
	ZMask uint64
	Pos   Pos
}

// Unknown returns the combined unknown-bit mask (x and z fold together in
// the simulator's two-plane value domain).
func (n *Number) Unknown() uint64 { return n.XMask | n.ZMask }

// UnaryOp enumerates unary operators, including reduction operators.
type UnaryOp int

// Unary operators.
const (
	UnaryLogicalNot UnaryOp = iota // !
	UnaryBitNot                    // ~
	UnaryMinus                     // -
	UnaryPlus                      // +
	UnaryRedAnd                    // &
	UnaryRedOr                     // |
	UnaryRedXor                    // ^
	UnaryRedXnor                   // ~^
)

var unaryOpNames = [...]string{"!", "~", "-", "+", "&", "|", "^", "~^"}

// String returns the operator's spelling.
func (op UnaryOp) String() string { return unaryOpNames[op] }

// Unary is a unary expression such as !x or &vec.
type Unary struct {
	Op  UnaryOp
	X   Expr
	Pos Pos
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators in no particular order; precedence lives in the parser.
const (
	BinAdd    BinaryOp = iota // +
	BinSub                    // -
	BinMul                    // *
	BinDiv                    // /
	BinMod                    // %
	BinAnd                    // &
	BinOr                     // |
	BinXor                    // ^
	BinXnor                   // ~^
	BinLogAnd                 // &&
	BinLogOr                  // ||
	BinEq                     // ==
	BinNe                     // !=
	BinCaseEq                 // ===
	BinCaseNe                 // !==
	BinLt                     // <
	BinLe                     // <=
	BinGt                     // >
	BinGe                     // >=
	BinShl                    // <<
	BinShr                    // >>
	BinAShr                   // >>>
)

var binaryOpNames = [...]string{
	"+", "-", "*", "/", "%", "&", "|", "^", "~^", "&&", "||",
	"==", "!=", "===", "!==", "<", "<=", ">", ">=", "<<", ">>", ">>>",
}

// String returns the operator's spelling.
func (op BinaryOp) String() string { return binaryOpNames[op] }

// Binary is a binary expression.
type Binary struct {
	Op   BinaryOp
	X, Y Expr
	Pos  Pos
}

// Ternary is the conditional operator cond ? x : y.
type Ternary struct {
	Cond Expr
	X, Y Expr
	Pos  Pos
}

// Index is a bit select x[i].
type Index struct {
	X   Expr
	Idx Expr
	Pos Pos
}

// Slice is a part select x[hi:lo] with constant bounds.
type Slice struct {
	X      Expr
	Hi, Lo Expr
	Pos    Pos
}

// Concat is a concatenation {a, b, c}.
type Concat struct {
	Elems []Expr
	Pos   Pos
}

// Repl is a replication {n{expr}}.
type Repl struct {
	Count Expr
	Elem  Expr
	Pos   Pos
}

// Call is a system-function call such as $past(x, 1) or $rose(y). Only
// system functions appear in the supported subset.
type Call struct {
	Name string // includes the leading '$'
	Args []Expr
	Pos  Pos
}

func (*Ident) exprNode()   {}
func (*Number) exprNode()  {}
func (*Unary) exprNode()   {}
func (*Binary) exprNode()  {}
func (*Ternary) exprNode() {}
func (*Index) exprNode()   {}
func (*Slice) exprNode()   {}
func (*Concat) exprNode()  {}
func (*Repl) exprNode()    {}
func (*Call) exprNode()    {}

// Span implements Expr.
func (e *Ident) Span() Pos { return e.Pos }

// Span implements Expr.
func (e *Number) Span() Pos { return e.Pos }

// Span implements Expr.
func (e *Unary) Span() Pos { return e.Pos }

// Span implements Expr.
func (e *Binary) Span() Pos { return e.Pos }

// Span implements Expr.
func (e *Ternary) Span() Pos { return e.Pos }

// Span implements Expr.
func (e *Index) Span() Pos { return e.Pos }

// Span implements Expr.
func (e *Slice) Span() Pos { return e.Pos }

// Span implements Expr.
func (e *Concat) Span() Pos { return e.Pos }

// Span implements Expr.
func (e *Repl) Span() Pos { return e.Pos }

// Span implements Expr.
func (e *Call) Span() Pos { return e.Pos }

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Stmt is any procedural statement.
type Stmt interface {
	stmtNode()
	// Span returns the statement's starting position.
	Span() Pos
}

// Block is a begin ... end statement list, optionally named.
type Block struct {
	Label string
	Stmts []Stmt
	Pos   Pos
}

// NonBlocking is a nonblocking assignment lhs <= rhs.
type NonBlocking struct {
	LHS Expr
	RHS Expr
	Pos Pos
}

// Blocking is a blocking assignment lhs = rhs.
type Blocking struct {
	LHS Expr
	RHS Expr
	Pos Pos
}

// If is an if/else statement. Else may be nil.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt
	Pos  Pos
}

// CaseItem is one arm of a case statement. A nil Exprs slice denotes the
// default arm.
type CaseItem struct {
	Exprs []Expr
	Body  Stmt
	Pos   Pos
}

// Case is a case or casez statement.
type Case struct {
	IsCasez bool
	Subject Expr
	Items   []CaseItem
	Pos     Pos
}

func (*Block) stmtNode()       {}
func (*NonBlocking) stmtNode() {}
func (*Blocking) stmtNode()    {}
func (*If) stmtNode()          {}
func (*Case) stmtNode()        {}

// Span implements Stmt.
func (s *Block) Span() Pos { return s.Pos }

// Span implements Stmt.
func (s *NonBlocking) Span() Pos { return s.Pos }

// Span implements Stmt.
func (s *Blocking) Span() Pos { return s.Pos }

// Span implements Stmt.
func (s *If) Span() Pos { return s.Pos }

// Span implements Stmt.
func (s *Case) Span() Pos { return s.Pos }

// ---------------------------------------------------------------------------
// Module items
// ---------------------------------------------------------------------------

// Item is any top-level module item.
type Item interface {
	itemNode()
	// Span returns the item's starting position.
	Span() Pos
}

// PortDir is a port direction.
type PortDir int

// Port directions.
const (
	DirInput PortDir = iota
	DirOutput
	DirInout
)

var portDirNames = [...]string{"input", "output", "inout"}

// String returns the direction keyword.
func (d PortDir) String() string { return portDirNames[d] }

// Range is a bit range [Hi:Lo]. Both bounds must be constant expressions
// (possibly referencing parameters).
type Range struct {
	Hi, Lo Expr
}

// Port is an ANSI-style port declaration.
type Port struct {
	Dir   PortDir
	IsReg bool
	Range *Range // nil for scalar
	Name  string
	Pos   Pos
}

// NetKind distinguishes wire and reg declarations.
type NetKind int

// Net kinds.
const (
	NetWire NetKind = iota
	NetReg
	NetInteger
)

var netKindNames = [...]string{"wire", "reg", "integer"}

// String returns the declaration keyword.
func (k NetKind) String() string { return netKindNames[k] }

// NetDecl declares one or more wires or regs, optionally with a continuous
// init for wires (wire x = expr).
type NetDecl struct {
	Kind  NetKind
	Range *Range
	Names []string
	Init  Expr // only valid for single-name wire declarations
	Pos   Pos
}

// ParamDecl declares a parameter or localparam.
type ParamDecl struct {
	IsLocal bool
	Name    string
	Value   Expr
	Pos     Pos
}

// AssignItem is a continuous assignment: assign lhs = rhs.
type AssignItem struct {
	LHS Expr
	RHS Expr
	Pos Pos
}

// EdgeKind is the kind of event in a sensitivity list.
type EdgeKind int

// Edge kinds. EdgeAny covers the @(*) and @(a or b) level-sensitive forms.
const (
	EdgePos EdgeKind = iota
	EdgeNeg
	EdgeAny
)

// Event is one entry in a sensitivity list.
type Event struct {
	Edge   EdgeKind
	Signal string // empty for @(*)
}

// AlwaysKind distinguishes the flavours of always blocks.
type AlwaysKind int

// Always kinds.
const (
	AlwaysPlain AlwaysKind = iota
	AlwaysFF
	AlwaysComb
)

// Always is an always block with its sensitivity list and body.
type Always struct {
	Kind   AlwaysKind
	Events []Event // empty means @(*) / always_comb
	Body   Stmt
	Pos    Pos
}

// Initial is an initial block (accepted and checked, ignored in simulation
// except for constant register initialization).
type Initial struct {
	Body Stmt
	Pos  Pos
}

// PropertyDecl is a named SVA property:
//
//	property p; @(posedge clk) disable iff (!rst_n) a |-> ##1 b; endproperty
type PropertyDecl struct {
	Name       string
	Clock      Event
	DisableIff Expr // nil if absent
	Seq        *SeqExpr
	Pos        Pos
}

// SeqTerm is one boolean term of a sequence, delayed DelayFromPrev cycles
// after the previous term (the first term's delay is relative to the match
// start and is normally 0).
type SeqTerm struct {
	DelayFromPrev int
	Expr          Expr
}

// ImplKind is the implication operator between antecedent and consequent.
type ImplKind int

// Implication kinds. ImplNone means the property is a plain sequence that
// must hold at every clock.
const (
	ImplNone       ImplKind = iota
	ImplOverlap             // |->
	ImplNonOverlap          // |=>
)

// SeqExpr is a property body: an optional antecedent sequence, an
// implication operator, and a consequent sequence.
type SeqExpr struct {
	Antecedent []SeqTerm // empty when Impl == ImplNone
	Impl       ImplKind
	Consequent []SeqTerm
}

// AssertItem is a concurrent assertion:
//
//	label: assert property (prop_name) else $error("message");
//
// Property may name a PropertyDecl (Ref) or carry an inline SeqExpr with its
// own clocking.
type AssertItem struct {
	Label      string
	Ref        string // named property reference; empty if inline
	Clock      *Event // inline form only
	DisableIff Expr   // inline form only
	Seq        *SeqExpr
	ErrMsg     string
	Pos        Pos
}

// PortConn is one connection in an instance's port or parameter list.
// Port is empty for positional connections; Expr is nil for an explicitly
// unconnected named port ".p()".
type PortConn struct {
	Port string
	Expr Expr
	Pos  Pos
}

// Instance is a module instantiation:
//
//	sub #(.P(4)) u0 (.clk(clk), .q(q));
//
// Parameter overrides always use the named ".P(expr)" form. Conns are
// either all named or all positional (Positional reports which); the two
// styles cannot be mixed.
type Instance struct {
	Module     string
	Name       string
	Params     []PortConn
	Conns      []PortConn
	Positional bool
	Pos        Pos
}

// CommentItem is a standalone comment line preserved by the corpus
// generator so that code length (a first-class experimental variable in the
// paper) can be controlled. The parser does not produce these; generators do.
type CommentItem struct {
	Text string
	Pos  Pos
}

func (*Port) itemNode()         {}
func (*NetDecl) itemNode()      {}
func (*ParamDecl) itemNode()    {}
func (*AssignItem) itemNode()   {}
func (*Always) itemNode()       {}
func (*Initial) itemNode()      {}
func (*PropertyDecl) itemNode() {}
func (*AssertItem) itemNode()   {}
func (*Instance) itemNode()     {}
func (*CommentItem) itemNode()  {}

// Span implements Item.
func (i *Port) Span() Pos { return i.Pos }

// Span implements Item.
func (i *NetDecl) Span() Pos { return i.Pos }

// Span implements Item.
func (i *ParamDecl) Span() Pos { return i.Pos }

// Span implements Item.
func (i *AssignItem) Span() Pos { return i.Pos }

// Span implements Item.
func (i *Always) Span() Pos { return i.Pos }

// Span implements Item.
func (i *Initial) Span() Pos { return i.Pos }

// Span implements Item.
func (i *PropertyDecl) Span() Pos { return i.Pos }

// Span implements Item.
func (i *AssertItem) Span() Pos { return i.Pos }

// Span implements Item.
func (i *Instance) Span() Pos { return i.Pos }

// Span implements Item.
func (i *CommentItem) Span() Pos { return i.Pos }

// Module is a single Verilog module.
type Module struct {
	Name  string
	Ports []*Port
	Items []Item
	Pos   Pos
}

// FindPort returns the port with the given name, or nil.
func (m *Module) FindPort(name string) *Port {
	for _, p := range m.Ports {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Properties returns all named property declarations in order.
func (m *Module) Properties() []*PropertyDecl {
	var out []*PropertyDecl
	for _, it := range m.Items {
		if p, ok := it.(*PropertyDecl); ok {
			out = append(out, p)
		}
	}
	return out
}

// Asserts returns all concurrent assertions in order.
func (m *Module) Asserts() []*AssertItem {
	var out []*AssertItem
	for _, it := range m.Items {
		if a, ok := it.(*AssertItem); ok {
			out = append(out, a)
		}
	}
	return out
}

// Instances returns all module instantiations in order.
func (m *Module) Instances() []*Instance {
	var out []*Instance
	for _, it := range m.Items {
		if inst, ok := it.(*Instance); ok {
			out = append(out, inst)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Expression helpers shared by downstream packages
// ---------------------------------------------------------------------------

// WalkExpr visits e and every sub-expression in depth-first order. The visit
// function may not be nil.
func WalkExpr(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *Unary:
		WalkExpr(x.X, visit)
	case *Binary:
		WalkExpr(x.X, visit)
		WalkExpr(x.Y, visit)
	case *Ternary:
		WalkExpr(x.Cond, visit)
		WalkExpr(x.X, visit)
		WalkExpr(x.Y, visit)
	case *Index:
		WalkExpr(x.X, visit)
		WalkExpr(x.Idx, visit)
	case *Slice:
		WalkExpr(x.X, visit)
		WalkExpr(x.Hi, visit)
		WalkExpr(x.Lo, visit)
	case *Concat:
		for _, el := range x.Elems {
			WalkExpr(el, visit)
		}
	case *Repl:
		WalkExpr(x.Count, visit)
		WalkExpr(x.Elem, visit)
	case *Call:
		for _, a := range x.Args {
			WalkExpr(a, visit)
		}
	}
}

// ExprIdents returns the set of identifier names referenced by e.
func ExprIdents(e Expr) map[string]bool {
	out := map[string]bool{}
	WalkExpr(e, func(sub Expr) {
		if id, ok := sub.(*Ident); ok {
			out[id.Name] = true
		}
	})
	return out
}

// WalkStmt visits s and every nested statement in depth-first order.
func WalkStmt(s Stmt, visit func(Stmt)) {
	if s == nil {
		return
	}
	visit(s)
	switch x := s.(type) {
	case *Block:
		for _, sub := range x.Stmts {
			WalkStmt(sub, visit)
		}
	case *If:
		WalkStmt(x.Then, visit)
		WalkStmt(x.Else, visit)
	case *Case:
		for _, item := range x.Items {
			WalkStmt(item.Body, visit)
		}
	}
}

// StmtExprs calls visit for every expression appearing directly in s
// (without descending into nested statements).
func StmtExprs(s Stmt, visit func(Expr)) {
	switch x := s.(type) {
	case *NonBlocking:
		visit(x.LHS)
		visit(x.RHS)
	case *Blocking:
		visit(x.LHS)
		visit(x.RHS)
	case *If:
		visit(x.Cond)
	case *Case:
		visit(x.Subject)
		for _, item := range x.Items {
			for _, e := range item.Exprs {
				visit(e)
			}
		}
	}
}

// NumberText renders a Number in canonical Verilog syntax, including x and
// z digits. A literal whose unknown bits do not align with its base's digit
// groups (possible only for programmatically built nodes; parsed literals
// are always aligned) is rendered in binary, which can express any bit mix.
func NumberText(n *Number) string {
	if n.Base == 0 {
		return strconv.FormatUint(n.Value, 10)
	}
	base, digits := numberDigits(n)
	if n.Width > 0 {
		return fmt.Sprintf("%d'%c%s", n.Width, base, digits)
	}
	return fmt.Sprintf("'%c%s", base, digits)
}

// numberDigits renders the digit run of a based literal, returning the base
// letter actually used (the literal's own base, or 'b' when unknown bits
// cannot be expressed in it).
func numberDigits(n *Number) (byte, string) {
	unk := n.XMask | n.ZMask
	if unk == 0 {
		switch n.Base {
		case 'b':
			digits := strconv.FormatUint(n.Value, 2)
			if n.Width > 0 && len(digits) < n.Width {
				digits = strings.Repeat("0", n.Width-len(digits)) + digits
			}
			return 'b', digits
		case 'o':
			return 'o', strconv.FormatUint(n.Value, 8)
		case 'h':
			return 'h', strconv.FormatUint(n.Value, 16)
		default: // 'd'
			return 'd', strconv.FormatUint(n.Value, 10)
		}
	}
	dom := ^uint64(0)
	if n.Width > 0 && n.Width < 64 {
		dom = (uint64(1) << uint(n.Width)) - 1
	}
	switch n.Base {
	case 'd':
		// Decimal can express unknowns only as a whole-literal x or z.
		if n.XMask&dom == dom && n.ZMask&dom == 0 && n.Value&dom == 0 {
			return 'd', "x"
		}
		if n.ZMask&dom == dom && n.XMask&dom == 0 && n.Value&dom == 0 {
			return 'd', "z"
		}
		return 'b', bitDigits(n)
	case 'o', 'h':
		g := 3
		if n.Base == 'h' {
			g = 4
		}
		if s, ok := groupDigits(n, g, dom); ok {
			return n.Base, s
		}
		return 'b', bitDigits(n)
	default: // 'b'
		return 'b', bitDigits(n)
	}
}

// bitDigits renders a literal bit by bit (binary), the representation every
// unknown-bit pattern fits in.
func bitDigits(n *Number) string {
	nd := n.Width
	if nd == 0 {
		nd = bits.Len64(n.Value | n.Unknown())
		if nd == 0 {
			nd = 1
		}
	}
	var sb strings.Builder
	for i := nd - 1; i >= 0; i-- {
		bit := uint64(1) << uint(i)
		switch {
		case n.XMask&bit != 0:
			sb.WriteByte('x')
		case n.ZMask&bit != 0:
			sb.WriteByte('z')
		case n.Value&bit != 0:
			sb.WriteByte('1')
		default:
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// groupDigits renders an octal/hex digit run when every digit group is
// either fully known, fully x, or fully z within the literal's width.
func groupDigits(n *Number, g int, dom uint64) (string, bool) {
	sig := n.Value | n.Unknown()
	nd := (bits.Len64(sig) + g - 1) / g
	if nd == 0 {
		nd = 1
	}
	var sb strings.Builder
	for i := nd - 1; i >= 0; i-- {
		shift := uint(i * g)
		gmask := ((uint64(1) << uint(g)) - 1) << shift
		live := gmask & dom
		x, z := n.XMask&gmask, n.ZMask&gmask
		switch {
		case x == 0 && z == 0:
			d := (n.Value & gmask) >> shift
			if d < 10 {
				sb.WriteByte(byte('0' + d))
			} else {
				sb.WriteByte(byte('a' + d - 10))
			}
		case live != 0 && x == live && z == 0:
			sb.WriteByte('x')
		case live != 0 && z == live && x == 0:
			sb.WriteByte('z')
		default:
			return "", false
		}
	}
	return sb.String(), true
}
