package verilog

// CloneModule returns a deep copy of a module. The bug-injection engine
// mutates clones so the golden AST is never aliased.
func CloneModule(m *Module) *Module {
	out := &Module{Name: m.Name, Pos: m.Pos}
	out.Ports = make([]*Port, len(m.Ports))
	for i, p := range m.Ports {
		cp := *p
		cp.Range = cloneRange(p.Range)
		out.Ports[i] = &cp
	}
	out.Items = make([]Item, len(m.Items))
	for i, it := range m.Items {
		out.Items[i] = CloneItem(it)
	}
	return out
}

func cloneRange(r *Range) *Range {
	if r == nil {
		return nil
	}
	return &Range{Hi: CloneExpr(r.Hi), Lo: CloneExpr(r.Lo)}
}

// CloneItem deep-copies a module item.
func CloneItem(it Item) Item {
	switch x := it.(type) {
	case *Port:
		cp := *x
		cp.Range = cloneRange(x.Range)
		return &cp
	case *NetDecl:
		cp := *x
		cp.Range = cloneRange(x.Range)
		cp.Names = append([]string(nil), x.Names...)
		cp.Init = CloneExpr(x.Init)
		return &cp
	case *ParamDecl:
		cp := *x
		cp.Value = CloneExpr(x.Value)
		return &cp
	case *AssignItem:
		cp := *x
		cp.LHS = CloneExpr(x.LHS)
		cp.RHS = CloneExpr(x.RHS)
		return &cp
	case *Always:
		cp := *x
		cp.Events = append([]Event(nil), x.Events...)
		cp.Body = CloneStmt(x.Body)
		return &cp
	case *Initial:
		cp := *x
		cp.Body = CloneStmt(x.Body)
		return &cp
	case *PropertyDecl:
		cp := *x
		cp.DisableIff = CloneExpr(x.DisableIff)
		cp.Seq = CloneSeqExpr(x.Seq)
		return &cp
	case *AssertItem:
		cp := *x
		if x.Clock != nil {
			ev := *x.Clock
			cp.Clock = &ev
		}
		cp.DisableIff = CloneExpr(x.DisableIff)
		cp.Seq = CloneSeqExpr(x.Seq)
		return &cp
	case *Instance:
		cp := *x
		cp.Params = clonePortConns(x.Params)
		cp.Conns = clonePortConns(x.Conns)
		return &cp
	case *CommentItem:
		cp := *x
		return &cp
	}
	return it
}

func clonePortConns(conns []PortConn) []PortConn {
	if conns == nil {
		return nil
	}
	out := make([]PortConn, len(conns))
	for i, c := range conns {
		out[i] = PortConn{Port: c.Port, Expr: CloneExpr(c.Expr), Pos: c.Pos}
	}
	return out
}

// CloneSet deep-copies a source set.
func CloneSet(s *SourceSet) *SourceSet {
	out := &SourceSet{Modules: make([]*Module, len(s.Modules))}
	for i, m := range s.Modules {
		out.Modules[i] = CloneModule(m)
	}
	return out
}

// CloneSeqExpr deep-copies a property body.
func CloneSeqExpr(s *SeqExpr) *SeqExpr {
	if s == nil {
		return nil
	}
	out := &SeqExpr{Impl: s.Impl}
	for _, t := range s.Antecedent {
		out.Antecedent = append(out.Antecedent, SeqTerm{DelayFromPrev: t.DelayFromPrev, Expr: CloneExpr(t.Expr)})
	}
	for _, t := range s.Consequent {
		out.Consequent = append(out.Consequent, SeqTerm{DelayFromPrev: t.DelayFromPrev, Expr: CloneExpr(t.Expr)})
	}
	return out
}

// CloneStmt deep-copies a statement tree.
func CloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case nil:
		return nil
	case *Block:
		cp := *x
		cp.Stmts = make([]Stmt, len(x.Stmts))
		for i, sub := range x.Stmts {
			cp.Stmts[i] = CloneStmt(sub)
		}
		return &cp
	case *NonBlocking:
		cp := *x
		cp.LHS = CloneExpr(x.LHS)
		cp.RHS = CloneExpr(x.RHS)
		return &cp
	case *Blocking:
		cp := *x
		cp.LHS = CloneExpr(x.LHS)
		cp.RHS = CloneExpr(x.RHS)
		return &cp
	case *If:
		cp := *x
		cp.Cond = CloneExpr(x.Cond)
		cp.Then = CloneStmt(x.Then)
		cp.Else = CloneStmt(x.Else)
		return &cp
	case *Case:
		cp := *x
		cp.Subject = CloneExpr(x.Subject)
		cp.Items = make([]CaseItem, len(x.Items))
		for i, item := range x.Items {
			ci := CaseItem{Pos: item.Pos, Body: CloneStmt(item.Body)}
			for _, e := range item.Exprs {
				ci.Exprs = append(ci.Exprs, CloneExpr(e))
			}
			cp.Items[i] = ci
		}
		return &cp
	}
	return s
}

// CloneExpr deep-copies an expression tree. Nil input yields nil.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Ident:
		cp := *x
		return &cp
	case *Number:
		cp := *x
		return &cp
	case *StringLit:
		cp := *x
		return &cp
	case *Unary:
		cp := *x
		cp.X = CloneExpr(x.X)
		return &cp
	case *Binary:
		cp := *x
		cp.X = CloneExpr(x.X)
		cp.Y = CloneExpr(x.Y)
		return &cp
	case *Ternary:
		cp := *x
		cp.Cond = CloneExpr(x.Cond)
		cp.X = CloneExpr(x.X)
		cp.Y = CloneExpr(x.Y)
		return &cp
	case *Index:
		cp := *x
		cp.X = CloneExpr(x.X)
		cp.Idx = CloneExpr(x.Idx)
		return &cp
	case *Slice:
		cp := *x
		cp.X = CloneExpr(x.X)
		cp.Hi = CloneExpr(x.Hi)
		cp.Lo = CloneExpr(x.Lo)
		return &cp
	case *Concat:
		cp := *x
		cp.Elems = make([]Expr, len(x.Elems))
		for i, el := range x.Elems {
			cp.Elems[i] = CloneExpr(el)
		}
		return &cp
	case *Repl:
		cp := *x
		cp.Count = CloneExpr(x.Count)
		cp.Elem = CloneExpr(x.Elem)
		return &cp
	case *Call:
		cp := *x
		cp.Args = make([]Expr, len(x.Args))
		for i, a := range x.Args {
			cp.Args[i] = CloneExpr(a)
		}
		return &cp
	}
	return e
}
