// Package verilog implements a front end for the subset of Verilog-2001 and
// SystemVerilog Assertions (SVA) used throughout the AssertSolver
// reproduction: a lexer, a recursive-descent parser, an AST, and a
// deterministic printer.
//
// The subset covers module declarations with ANSI and non-ANSI ports,
// wire/reg/parameter declarations, continuous assignments, always blocks
// (sequential and combinational), if/else, case, begin/end blocks, the usual
// expression operators, and SVA property/assert constructs with clocking,
// "disable iff", boolean sequences, cycle delays (##N) and the overlapping
// and non-overlapping implication operators.
package verilog
