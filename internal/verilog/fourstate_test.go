package verilog

import "testing"

// TestParseUnknownLiterals pins the x/z digit decoding: Value keeps 0 at
// unknown positions (two-state view) while XMask/ZMask record which bits
// were written x and z ('?' is a z).
func TestParseUnknownLiterals(t *testing.T) {
	tests := []struct {
		src   string
		width int
		value uint64
		xmask uint64
		zmask uint64
	}{
		{"8'bxxxx_zz01", 8, 0b01, 0b11110000, 0b00001100},
		{"'bx1z0", 0, 0b0100, 0b1000, 0b0010},
		{"'hx?", 0, 0, 0xF0, 0x0F},
		{"4'b1x0z", 4, 0b1000, 0b0100, 0b0001},
		{"8'hx1", 8, 0x01, 0xF0, 0},
		{"8'hz?", 8, 0, 0, 0xFF},
		{"6'hxF", 6, 0x0F, 0x30, 0},
		{"9'o1x7", 9, 0o107, 0o070, 0},
		{"8'dx", 8, 0, 0xFF, 0},
		{"8'dz", 8, 0, 0, 0xFF},
		{"8'd?", 8, 0, 0, 0xFF},
		{"8'b1_x_z_0", 8, 0b1000, 0b0100, 0b0010},
		{"4'b1010", 4, 10, 0, 0},
	}
	for _, tt := range tests {
		e, err := ParseExpr(tt.src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", tt.src, err)
			continue
		}
		n, ok := e.(*Number)
		if !ok {
			t.Errorf("ParseExpr(%q) = %T, want *Number", tt.src, e)
			continue
		}
		if n.Width != tt.width || n.Value != tt.value || n.XMask != tt.xmask || n.ZMask != tt.zmask {
			t.Errorf("ParseExpr(%q) = width %d value %#x x %#x z %#x, want width %d value %#x x %#x z %#x",
				tt.src, n.Width, n.Value, n.XMask, n.ZMask, tt.width, tt.value, tt.xmask, tt.zmask)
		}
	}
}

// TestUnknownLiteralRoundTrip: print -> parse must reproduce all three
// planes of a literal. '?' digits normalise to 'z' and underscores are
// dropped, so the second print is the fixpoint the oracle requires.
func TestUnknownLiteralRoundTrip(t *testing.T) {
	srcs := []string{
		"8'bxxxx_zz01", "'bx1z0", "'hx?", "4'b1x0z", "8'hx1", "8'hz?",
		"6'hxF", "9'o1x7", "8'dx", "8'dz", "8'd?", "16'hxz0f",
		"8'b1_x_z_0", "12'o1x_z7", "4'd5", "8'hff",
	}
	for _, src := range srcs {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		n := e.(*Number)
		printed := NumberText(n)
		back, err := ParseExpr(printed)
		if err != nil {
			t.Fatalf("reparse of %q (printed %q): %v", src, printed, err)
		}
		bn := back.(*Number)
		if bn.Width != n.Width || bn.Base != n.Base || bn.Value != n.Value ||
			bn.XMask != n.XMask || bn.ZMask != n.ZMask {
			t.Errorf("%q: printed %q reparses to %+v, want %+v", src, printed, bn, n)
		}
		if again := NumberText(bn); again != printed {
			t.Errorf("%q: print is not a fixpoint: %q then %q", src, printed, again)
		}
	}
}

// TestUnknownLiteralBinaryFallback: programmatically built literals whose
// unknown bits do not align with their base's digit groups render in
// binary, which preserves every bit exactly.
func TestUnknownLiteralBinaryFallback(t *testing.T) {
	n := &Number{Width: 8, Base: 'h', Value: 0x21, XMask: 0x02}
	got := NumberText(n)
	if got != "8'b001000x1" {
		t.Errorf("NumberText = %q, want 8'b001000x1", got)
	}
	back, err := ParseExpr(got)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	bn := back.(*Number)
	if bn.Value != n.Value || bn.XMask != n.XMask || bn.ZMask != n.ZMask {
		t.Errorf("fallback loses bits: %+v vs %+v", bn, n)
	}
}

// TestDecimalUnknownDigitRejected: x/z may only be the sole digit of a
// decimal literal (IEEE 1364 §2.5.1).
func TestDecimalUnknownDigitRejected(t *testing.T) {
	if _, err := ParseExpr("8'dx5"); err == nil {
		t.Error("8'dx5 parsed; want error")
	}
}
