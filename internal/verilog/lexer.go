package verilog

import (
	"fmt"
	"strings"
	"unicode"
)

// LexError describes a lexical error with its position.
type LexError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer turns Verilog source text into a token stream. It skips whitespace,
// comments, and compiler directives (`...), and tracks line/column positions.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input. It returns the tokens (terminated by an EOF
// token) and the first lexical error, if any.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return toks, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return &LexError{Pos: start, Msg: "unterminated block comment"}
			}
		case c == '`':
			// Compiler directive: skip to end of line.
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// isBaseDigit reports whether c is a valid digit at position idx of the
// digit run for the given base letter ('b', 'o', 'd' or 'h', already
// lower-cased). Each base admits only its own digit set plus '_'
// separators and the x/z/? unknown digits — which a decimal literal
// allows only as its sole leading digit ('dx), per IEEE 1364 §2.5.1.
// Accepting any hex digit in any base made decimal literals swallow
// following tokens: 8'd1?0 must lex as the literal 8'd1, then '?',
// then 0 — not as one malformed literal.
func isBaseDigit(c, base byte, idx int) bool {
	if c == '_' {
		return idx > 0 // a literal's digit run cannot start with '_'
	}
	if c == 'x' || c == 'X' || c == 'z' || c == 'Z' || c == '?' {
		return base != 'd' || idx == 0
	}
	switch base {
	case 'b':
		return c == '0' || c == '1'
	case 'o':
		return c >= '0' && c <= '7'
	case 'd':
		return isDigit(c)
	default: // 'h'
		return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
	}
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		return lx.lexIdent(start), nil
	case c == '$':
		return lx.lexSysIdent(start)
	case isDigit(c) || c == '\'':
		return lx.lexNumber(start)
	case c == '"':
		return lx.lexString(start)
	}
	return lx.lexOperator(start)
}

func (lx *Lexer) lexIdent(start Pos) Token {
	begin := lx.off
	for {
		for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		// Hierarchical names produced by elaboration ("u0.count") must
		// survive a print/parse round trip as single identifiers: a '.'
		// directly between identifier characters extends the token. A
		// leading '.' (named port connection ".clk(clk)") never reaches
		// here and still lexes as TokDot.
		if lx.peek() == '.' && lx.off+1 < len(lx.src) && isIdentStart(lx.src[lx.off+1]) {
			lx.advance()
			continue
		}
		break
	}
	text := lx.src[begin:lx.off]
	if kw, ok := keywords[text]; ok {
		return Token{Kind: kw, Text: text, Pos: start}
	}
	return Token{Kind: TokIdent, Text: text, Pos: start}
}

func (lx *Lexer) lexSysIdent(start Pos) (Token, error) {
	begin := lx.off
	lx.advance() // consume '$'
	if lx.off >= len(lx.src) || !isIdentStart(lx.peek()) {
		return Token{}, &LexError{Pos: start, Msg: "expected identifier after '$'"}
	}
	for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
		lx.advance()
	}
	return Token{Kind: TokSysIdent, Text: lx.src[begin:lx.off], Pos: start}, nil
}

// lexNumber handles plain decimals (42), sized literals (4'b1010, 8'hFF),
// and unsized based literals ('d15). Underscores are allowed inside digits.
func (lx *Lexer) lexNumber(start Pos) (Token, error) {
	begin := lx.off
	for lx.off < len(lx.src) && (isDigit(lx.peek()) || lx.peek() == '_') {
		lx.advance()
	}
	if lx.off < len(lx.src) && lx.peek() == '\'' {
		lx.advance()
		if lx.off < len(lx.src) && (lx.peek() == 's' || lx.peek() == 'S') {
			lx.advance()
		}
		if lx.off >= len(lx.src) || !strings.ContainsRune("bBoOdDhH", rune(lx.peek())) {
			return Token{}, &LexError{Pos: start, Msg: "invalid base specifier in numeric literal"}
		}
		base := lx.peek() | 0x20 // lower-case the base letter
		lx.advance()
		if lx.off >= len(lx.src) || !isBaseDigit(lx.peek(), base, 0) {
			return Token{}, &LexError{Pos: start, Msg: "missing digits in based numeric literal"}
		}
		for i := 0; lx.off < len(lx.src) && isBaseDigit(lx.peek(), base, i); i++ {
			lx.advance()
		}
	}
	return Token{Kind: TokNumber, Text: lx.src[begin:lx.off], Pos: start}, nil
}

func (lx *Lexer) lexString(start Pos) (Token, error) {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, &LexError{Pos: start, Msg: "unterminated string literal"}
		}
		c := lx.advance()
		if c == '"' {
			break
		}
		if c == '\\' && lx.off < len(lx.src) {
			esc := lx.advance()
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				sb.WriteByte(esc)
			}
			continue
		}
		if c == '\n' {
			return Token{}, &LexError{Pos: start, Msg: "newline in string literal"}
		}
		sb.WriteByte(c)
	}
	return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
}

func (lx *Lexer) lexOperator(start Pos) (Token, error) {
	c := lx.advance()
	mk := func(k TokenKind) (Token, error) {
		return Token{Kind: k, Text: k.String(), Pos: start}, nil
	}
	switch c {
	case '(':
		return mk(TokLParen)
	case ')':
		return mk(TokRParen)
	case '[':
		return mk(TokLBracket)
	case ']':
		return mk(TokRBracket)
	case '{':
		return mk(TokLBrace)
	case '}':
		return mk(TokRBrace)
	case ';':
		return mk(TokSemi)
	case ',':
		return mk(TokComma)
	case ':':
		return mk(TokColon)
	case '.':
		return mk(TokDot)
	case '@':
		return mk(TokAt)
	case '?':
		return mk(TokQuestion)
	case '#':
		if lx.peek() == '#' {
			lx.advance()
			return mk(TokHashHash)
		}
		return mk(TokHash)
	case '+':
		return mk(TokPlus)
	case '-':
		if lx.peek() == '>' {
			lx.advance()
			return mk(TokArrow)
		}
		return mk(TokMinus)
	case '*':
		return mk(TokStar)
	case '/':
		return mk(TokSlash)
	case '%':
		return mk(TokPercent)
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return mk(TokAndAnd)
		}
		return mk(TokAmp)
	case '|':
		switch {
		case lx.peek() == '|':
			lx.advance()
			return mk(TokOrOr)
		case lx.peek() == '-' && lx.peek2() == '>':
			lx.advance()
			lx.advance()
			return mk(TokImplies)
		case lx.peek() == '=' && lx.peek2() == '>':
			lx.advance()
			lx.advance()
			return mk(TokImpliesNon)
		}
		return mk(TokPipe)
	case '^':
		if lx.peek() == '~' {
			lx.advance()
			return mk(TokTildeCaret)
		}
		return mk(TokCaret)
	case '~':
		if lx.peek() == '^' {
			lx.advance()
			return mk(TokTildeCaret)
		}
		return mk(TokTilde)
	case '!':
		switch {
		case lx.peek() == '=' && lx.peek2() == '=':
			lx.advance()
			lx.advance()
			return mk(TokCaseNe)
		case lx.peek() == '=':
			lx.advance()
			return mk(TokNotEq)
		}
		return mk(TokBang)
	case '=':
		switch {
		case lx.peek() == '=' && lx.peek2() == '=':
			lx.advance()
			lx.advance()
			return mk(TokCaseEq)
		case lx.peek() == '=':
			lx.advance()
			return mk(TokEqEq)
		}
		return mk(TokEq)
	case '<':
		switch {
		case lx.peek() == '=':
			lx.advance()
			return mk(TokLE)
		case lx.peek() == '<':
			lx.advance()
			return mk(TokShl)
		}
		return mk(TokLT)
	case '>':
		switch {
		case lx.peek() == '=':
			lx.advance()
			return mk(TokGE)
		case lx.peek() == '>':
			lx.advance()
			if lx.peek() == '>' {
				lx.advance()
				return mk(TokAShr)
			}
			return mk(TokShr)
		}
		return mk(TokGT)
	}
	return Token{}, &LexError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", string(c))}
}
