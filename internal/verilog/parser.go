package verilog

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError is a syntax error with its source position.
type ParseError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

// Parser consumes a token stream and produces a Module.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a single module from source text. This is the main entry
// point used by the compiler front end.
func Parse(src string) (*Module, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	m, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokEOF {
		return nil, p.errf("unexpected %s after endmodule", p.cur())
	}
	return m, nil
}

// ParseSet parses a source file containing one or more modules. Single-
// module files yield a one-element set, so ParseSet subsumes Parse for
// callers that accept hierarchies.
func ParseSet(src string) (*SourceSet, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	set := &SourceSet{}
	for {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		set.Modules = append(set.Modules, m)
		if p.cur().Kind == TokEOF {
			return set, nil
		}
		if p.cur().Kind != TokModule {
			return nil, p.errf("unexpected %s after endmodule", p.cur())
		}
	}
}

// ParseExpr parses a standalone expression, used by tooling that needs to
// parse fix snippets or assertion conditions in isolation.
func ParseExpr(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokEOF {
		return nil, p.errf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

func (p *Parser) cur() Token {
	if p.pos >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.pos]
}

func (p *Parser) peekKind(ahead int) TokenKind {
	i := p.pos + ahead
	if i >= len(p.toks) {
		return TokEOF
	}
	return p.toks[i].Kind
}

func (p *Parser) peekTok(ahead int) Token {
	i := p.pos + ahead
	if i >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[i]
}

func (p *Parser) next() Token {
	t := p.cur()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k TokenKind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k TokenKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// ---------------------------------------------------------------------------
// Module structure
// ---------------------------------------------------------------------------

func (p *Parser) parseModule() (*Module, error) {
	start, err := p.expect(TokModule)
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	m := &Module{Name: nameTok.Text, Pos: start.Pos}

	// Optional parameter port list: #(parameter N = 4, ...)
	if p.accept(TokHash) {
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		for {
			p.accept(TokParameter)
			decl, err := p.parseOneParam(false)
			if err != nil {
				return nil, err
			}
			m.Items = append(m.Items, decl)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}

	if p.accept(TokLParen) {
		if p.cur().Kind != TokRParen {
			if err := p.parsePortList(m); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}

	for p.cur().Kind != TokEndmodule {
		if p.cur().Kind == TokEOF {
			return nil, p.errf("missing endmodule")
		}
		items, err := p.parseItem(m)
		if err != nil {
			return nil, err
		}
		m.Items = append(m.Items, items...)
	}
	p.next() // endmodule
	return m, nil
}

// parsePortList handles both ANSI ports (direction inline) and non-ANSI
// ports (bare names whose direction appears in later items).
func (p *Parser) parsePortList(m *Module) error {
	var lastDir PortDir
	var haveDir bool
	for {
		tok := p.cur()
		switch tok.Kind {
		case TokInput, TokOutput, TokInout:
			p.next()
			dir := dirOf(tok.Kind)
			lastDir, haveDir = dir, true
			isReg := p.accept(TokReg) || p.accept(TokLogic)
			rng, err := p.parseOptRange()
			if err != nil {
				return err
			}
			name, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			m.Ports = append(m.Ports, &Port{Dir: dir, IsReg: isReg, Range: rng, Name: name.Text, Pos: tok.Pos})
		case TokIdent:
			p.next()
			if haveDir {
				// continuation of previous ANSI declaration: "input a, b"
				prev := m.Ports[len(m.Ports)-1]
				m.Ports = append(m.Ports, &Port{Dir: lastDir, IsReg: prev.IsReg, Range: prev.Range, Name: tok.Text, Pos: tok.Pos})
			} else {
				// non-ANSI: bare name; direction comes later.
				m.Ports = append(m.Ports, &Port{Dir: DirInput, Name: tok.Text, Pos: tok.Pos})
			}
		default:
			return p.errf("expected port declaration, found %s", tok)
		}
		if !p.accept(TokComma) {
			return nil
		}
	}
}

func dirOf(k TokenKind) PortDir {
	switch k {
	case TokInput:
		return DirInput
	case TokOutput:
		return DirOutput
	default:
		return DirInout
	}
}

func (p *Parser) parseOptRange() (*Range, error) {
	if p.cur().Kind != TokLBracket {
		return nil, nil
	}
	p.next()
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return nil, err
	}
	return &Range{Hi: hi, Lo: lo}, nil
}

func (p *Parser) parseOneParam(isLocal bool) (*ParamDecl, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokEq); err != nil {
		return nil, err
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ParamDecl{IsLocal: isLocal, Name: name.Text, Value: val, Pos: name.Pos}, nil
}

// parseItem parses one module item; a single source item can declare several
// names, producing several AST items for non-ANSI port declarations.
func (p *Parser) parseItem(m *Module) ([]Item, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokInput, TokOutput, TokInout:
		return p.parseNonANSIPortDecl(m)
	case TokWire, TokReg, TokLogic, TokInteger:
		it, err := p.parseNetDecl()
		if err != nil {
			return nil, err
		}
		return []Item{it}, nil
	case TokParameter, TokLocalparam:
		p.next()
		var items []Item
		for {
			d, err := p.parseOneParam(tok.Kind == TokLocalparam)
			if err != nil {
				return nil, err
			}
			items = append(items, d)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return items, nil
	case TokAssign:
		p.next()
		lhs, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokEq); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return []Item{&AssignItem{LHS: lhs, RHS: rhs, Pos: tok.Pos}}, nil
	case TokAlways, TokAlwaysFF, TokAlwaysComb:
		it, err := p.parseAlways()
		if err != nil {
			return nil, err
		}
		return []Item{it}, nil
	case TokInitial:
		p.next()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return []Item{&Initial{Body: body, Pos: tok.Pos}}, nil
	case TokProperty:
		it, err := p.parsePropertyDecl()
		if err != nil {
			return nil, err
		}
		return []Item{it}, nil
	case TokAssert:
		it, err := p.parseAssert("")
		if err != nil {
			return nil, err
		}
		return []Item{it}, nil
	case TokIdent:
		// A leading identifier begins either a labelled assertion
		// ("label: assert property ...") or a module instantiation
		// ("sub u0 (...);", "sub #(.P(4)) u0 (...);").
		if p.peekKind(1) == TokColon && p.peekKind(2) == TokAssert {
			label := p.next().Text
			p.next() // colon
			it, err := p.parseAssert(label)
			if err != nil {
				return nil, err
			}
			return []Item{it}, nil
		}
		if p.peekKind(1) == TokHash || (p.peekKind(1) == TokIdent && p.peekKind(2) == TokLParen) {
			it, err := p.parseInstance()
			if err != nil {
				return nil, err
			}
			return []Item{it}, nil
		}
		return nil, p.errf("unexpected %s after identifier %q in module body (expected an instance name for a module instantiation, or ':' for a labelled assertion)", p.peekTok(1), tok.Text)
	default:
		return nil, p.errf("unexpected %s in module body", tok)
	}
}

// parseInstance parses a module instantiation item, with optional named
// parameter overrides and either all-named or all-positional connections:
//
//	sub u0 (a, b);
//	sub #(.P(4)) u0 (.clk(clk), .q(q));
func (p *Parser) parseInstance() (Item, error) {
	mod := p.next() // module name
	inst := &Instance{Module: mod.Text, Pos: mod.Pos}
	if p.accept(TokHash) {
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		for {
			pc, err := p.parseNamedConn()
			if err != nil {
				return nil, err
			}
			if pc.Expr == nil {
				return nil, &ParseError{Pos: pc.Pos, Msg: fmt.Sprintf("parameter override .%s() needs a value", pc.Port)}
			}
			inst.Params = append(inst.Params, pc)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	inst.Name = name.Text
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokRParen {
		if p.cur().Kind == TokDot {
			for {
				pc, err := p.parseNamedConn()
				if err != nil {
					return nil, err
				}
				inst.Conns = append(inst.Conns, pc)
				if !p.accept(TokComma) {
					break
				}
			}
		} else {
			inst.Positional = true
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				inst.Conns = append(inst.Conns, PortConn{Expr: e, Pos: e.Span()})
				if !p.accept(TokComma) {
					break
				}
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return inst, nil
}

// parseNamedConn parses one ".name(expr)" connection; the expression may
// be absent (".name()" leaves the port unconnected).
func (p *Parser) parseNamedConn() (PortConn, error) {
	dot, err := p.expect(TokDot)
	if err != nil {
		return PortConn{}, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return PortConn{}, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return PortConn{}, err
	}
	pc := PortConn{Port: name.Text, Pos: dot.Pos}
	if p.cur().Kind != TokRParen {
		e, err := p.parseExpr()
		if err != nil {
			return PortConn{}, err
		}
		pc.Expr = e
	}
	if _, err := p.expect(TokRParen); err != nil {
		return PortConn{}, err
	}
	return pc, nil
}

func (p *Parser) parseNonANSIPortDecl(m *Module) ([]Item, error) {
	tok := p.next()
	dir := dirOf(tok.Kind)
	isReg := p.accept(TokReg) || p.accept(TokLogic)
	rng, err := p.parseOptRange()
	if err != nil {
		return nil, err
	}
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if existing := m.FindPort(name.Text); existing != nil {
			existing.Dir = dir
			existing.IsReg = isReg
			existing.Range = rng
		} else {
			m.Ports = append(m.Ports, &Port{Dir: dir, IsReg: isReg, Range: rng, Name: name.Text, Pos: name.Pos})
		}
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return nil, nil
}

func (p *Parser) parseNetDecl() (Item, error) {
	tok := p.next()
	var kind NetKind
	switch tok.Kind {
	case TokWire:
		kind = NetWire
	case TokReg, TokLogic:
		kind = NetReg
	case TokInteger:
		kind = NetInteger
	}
	rng, err := p.parseOptRange()
	if err != nil {
		return nil, err
	}
	decl := &NetDecl{Kind: kind, Range: rng, Pos: tok.Pos}
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		decl.Names = append(decl.Names, name.Text)
		if p.accept(TokEq) {
			init, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			decl.Init = init
		}
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if decl.Init != nil && len(decl.Names) > 1 {
		return nil, &ParseError{Pos: decl.Pos, Msg: "initializer on multi-name declaration"}
	}
	return decl, nil
}

func (p *Parser) parseAlways() (Item, error) {
	tok := p.next()
	kind := AlwaysPlain
	switch tok.Kind {
	case TokAlwaysFF:
		kind = AlwaysFF
	case TokAlwaysComb:
		kind = AlwaysComb
	}
	var events []Event
	if kind != AlwaysComb {
		if _, err := p.expect(TokAt); err != nil {
			return nil, err
		}
		if p.accept(TokStar) {
			// @* without parens
		} else {
			if _, err := p.expect(TokLParen); err != nil {
				return nil, err
			}
			if p.accept(TokStar) {
				// @(*)
			} else {
				for {
					ev, err := p.parseEvent()
					if err != nil {
						return nil, err
					}
					events = append(events, ev)
					if p.accept(TokOr) || p.accept(TokComma) {
						continue
					}
					break
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &Always{Kind: kind, Events: events, Body: body, Pos: tok.Pos}, nil
}

func (p *Parser) parseEvent() (Event, error) {
	switch p.cur().Kind {
	case TokPosedge:
		p.next()
		sig, err := p.expect(TokIdent)
		if err != nil {
			return Event{}, err
		}
		return Event{Edge: EdgePos, Signal: sig.Text}, nil
	case TokNegedge:
		p.next()
		sig, err := p.expect(TokIdent)
		if err != nil {
			return Event{}, err
		}
		return Event{Edge: EdgeNeg, Signal: sig.Text}, nil
	case TokIdent:
		sig := p.next()
		return Event{Edge: EdgeAny, Signal: sig.Text}, nil
	default:
		return Event{}, p.errf("expected event expression, found %s", p.cur())
	}
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (p *Parser) parseStmt() (Stmt, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokBegin:
		p.next()
		blk := &Block{Pos: tok.Pos}
		if p.accept(TokColon) {
			lbl, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			blk.Label = lbl.Text
		}
		for p.cur().Kind != TokEnd {
			if p.cur().Kind == TokEOF {
				return nil, p.errf("missing end")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			blk.Stmts = append(blk.Stmts, s)
		}
		p.next() // end
		return blk, nil
	case TokIf:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept(TokElse) {
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els, Pos: tok.Pos}, nil
	case TokCase, TokCasez:
		return p.parseCase()
	case TokSemi:
		p.next()
		return &Block{Pos: tok.Pos}, nil
	default:
		return p.parseAssignStmt()
	}
}

func (p *Parser) parseCase() (Stmt, error) {
	tok := p.next()
	cs := &Case{IsCasez: tok.Kind == TokCasez, Pos: tok.Pos}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	subj, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	cs.Subject = subj
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	for p.cur().Kind != TokEndcase {
		if p.cur().Kind == TokEOF {
			return nil, p.errf("missing endcase")
		}
		item := CaseItem{Pos: p.cur().Pos}
		if p.accept(TokDefault) {
			p.accept(TokColon)
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item.Exprs = append(item.Exprs, e)
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		item.Body = body
		cs.Items = append(cs.Items, item)
	}
	p.next() // endcase
	return cs, nil
}

func (p *Parser) parseAssignStmt() (Stmt, error) {
	start := p.cur().Pos
	lhs, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case TokLE:
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &NonBlocking{LHS: lhs, RHS: rhs, Pos: start}, nil
	case TokEq:
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &Blocking{LHS: lhs, RHS: rhs, Pos: start}, nil
	default:
		return nil, p.errf("expected assignment operator, found %s", p.cur())
	}
}

// ---------------------------------------------------------------------------
// SVA constructs
// ---------------------------------------------------------------------------

func (p *Parser) parsePropertyDecl() (Item, error) {
	tok := p.next() // property
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	decl := &PropertyDecl{Name: name.Text, Pos: tok.Pos}
	clock, disable, err := p.parseClockingAndDisable()
	if err != nil {
		return nil, err
	}
	if clock == nil {
		return nil, p.errf("property %s lacks a clocking event", name.Text)
	}
	decl.Clock = *clock
	decl.DisableIff = disable
	seq, err := p.parseSeqExpr()
	if err != nil {
		return nil, err
	}
	decl.Seq = seq
	p.accept(TokSemi)
	if _, err := p.expect(TokEndproperty); err != nil {
		return nil, err
	}
	return decl, nil
}

func (p *Parser) parseClockingAndDisable() (*Event, Expr, error) {
	var clock *Event
	var disable Expr
	if p.accept(TokAt) {
		if _, err := p.expect(TokLParen); err != nil {
			return nil, nil, err
		}
		ev, err := p.parseEvent()
		if err != nil {
			return nil, nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, nil, err
		}
		clock = &ev
	}
	if p.accept(TokDisable) {
		if _, err := p.expect(TokIff); err != nil {
			return nil, nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, nil, err
		}
		disable = e
	}
	return clock, disable, nil
}

func (p *Parser) parseSeq() ([]SeqTerm, error) {
	var terms []SeqTerm
	delay := 0
	if p.accept(TokHashHash) {
		n, err := p.parseDelayCount()
		if err != nil {
			return nil, err
		}
		delay = n
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		terms = append(terms, SeqTerm{DelayFromPrev: delay, Expr: e})
		if !p.accept(TokHashHash) {
			return terms, nil
		}
		n, err := p.parseDelayCount()
		if err != nil {
			return nil, err
		}
		delay = n
	}
}

func (p *Parser) parseDelayCount() (int, error) {
	tok, err := p.expect(TokNumber)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(tok.Text)
	if err != nil {
		return 0, &ParseError{Pos: tok.Pos, Msg: "cycle delay must be a plain decimal"}
	}
	return n, nil
}

func (p *Parser) parseSeqExpr() (*SeqExpr, error) {
	first, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case TokImplies, TokImpliesNon:
		impl := ImplOverlap
		if p.cur().Kind == TokImpliesNon {
			impl = ImplNonOverlap
		}
		p.next()
		cons, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		return &SeqExpr{Antecedent: first, Impl: impl, Consequent: cons}, nil
	default:
		return &SeqExpr{Impl: ImplNone, Consequent: first}, nil
	}
}

func (p *Parser) parseAssert(label string) (Item, error) {
	tok := p.next() // assert
	if _, err := p.expect(TokProperty); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	it := &AssertItem{Label: label, Pos: tok.Pos}
	// Named reference: assert property (prop_name)
	if p.cur().Kind == TokIdent && p.peekKind(1) == TokRParen {
		it.Ref = p.next().Text
	} else {
		clock, disable, err := p.parseClockingAndDisable()
		if err != nil {
			return nil, err
		}
		it.Clock = clock
		it.DisableIff = disable
		seq, err := p.parseSeqExpr()
		if err != nil {
			return nil, err
		}
		it.Seq = seq
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if p.accept(TokElse) {
		call, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		if c, ok := call.(*Call); ok && len(c.Args) > 0 {
			if lit, ok := c.Args[0].(*StringLit); ok {
				it.ErrMsg = lit.Value
			}
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return it, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

// binPrec maps a token kind to (binary operator, precedence). Higher binds
// tighter. 0 means not a binary operator.
func binPrec(k TokenKind) (BinaryOp, int) {
	switch k {
	case TokOrOr:
		return BinLogOr, 1
	case TokAndAnd:
		return BinLogAnd, 2
	case TokPipe:
		return BinOr, 3
	case TokCaret:
		return BinXor, 4
	case TokTildeCaret:
		return BinXnor, 4
	case TokAmp:
		return BinAnd, 5
	case TokEqEq:
		return BinEq, 6
	case TokNotEq:
		return BinNe, 6
	case TokCaseEq:
		return BinCaseEq, 6
	case TokCaseNe:
		return BinCaseNe, 6
	case TokLT:
		return BinLt, 7
	case TokLE:
		return BinLe, 7
	case TokGT:
		return BinGt, 7
	case TokGE:
		return BinGe, 7
	case TokShl:
		return BinShl, 8
	case TokShr:
		return BinShr, 8
	case TokAShr:
		return BinAShr, 8
	case TokPlus:
		return BinAdd, 9
	case TokMinus:
		return BinSub, 9
	case TokStar:
		return BinMul, 10
	case TokSlash:
		return BinDiv, 10
	case TokPercent:
		return BinMod, 10
	}
	return 0, 0
}

func (p *Parser) parseExpr() (Expr, error) {
	return p.parseTernary()
}

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.accept(TokQuestion) {
		return cond, nil
	}
	pos := cond.Span()
	x, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	y, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &Ternary{Cond: cond, X: x, Y: y, Pos: pos}, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, prec := binPrec(p.cur().Kind)
		if prec == 0 || prec < minPrec {
			return lhs, nil
		}
		pos := p.next().Pos
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op, X: lhs, Y: rhs, Pos: pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	tok := p.cur()
	var op UnaryOp
	switch tok.Kind {
	case TokBang:
		op = UnaryLogicalNot
	case TokTilde:
		op = UnaryBitNot
	case TokMinus:
		op = UnaryMinus
	case TokPlus:
		op = UnaryPlus
	case TokAmp:
		op = UnaryRedAnd
	case TokPipe:
		op = UnaryRedOr
	case TokCaret:
		op = UnaryRedXor
	case TokTildeCaret:
		op = UnaryRedXnor
	default:
		return p.parsePostfix()
	}
	p.next()
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return &Unary{Op: op, X: x, Pos: tok.Pos}, nil
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokLBracket {
		pos := p.next().Pos
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(TokColon) {
			lo, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			e = &Slice{X: e, Hi: first, Lo: lo, Pos: pos}
		} else {
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			e = &Index{X: e, Idx: first, Pos: pos}
		}
	}
	return e, nil
}

// StringLit is a string literal expression; it only appears as an argument
// to system calls such as $error.
type StringLit struct {
	Value string
	Pos   Pos
}

func (*StringLit) exprNode() {}

// Span implements Expr.
func (e *StringLit) Span() Pos { return e.Pos }

func (p *Parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokIdent:
		p.next()
		return &Ident{Name: tok.Text, Pos: tok.Pos}, nil
	case TokNumber:
		p.next()
		return parseNumberToken(tok)
	case TokString:
		p.next()
		return &StringLit{Value: tok.Text, Pos: tok.Pos}, nil
	case TokSysIdent:
		p.next()
		call := &Call{Name: tok.Text, Pos: tok.Pos}
		if p.accept(TokLParen) {
			if p.cur().Kind != TokRParen {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(TokComma) {
						break
					}
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
		}
		return call, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokLBrace:
		return p.parseConcat()
	default:
		return nil, p.errf("expected expression, found %s", tok)
	}
}

func (p *Parser) parseConcat() (Expr, error) {
	open := p.next() // {
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	// Replication: {n{expr}}
	if p.cur().Kind == TokLBrace {
		p.next()
		elem, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		return &Repl{Count: first, Elem: elem, Pos: open.Pos}, nil
	}
	cc := &Concat{Elems: []Expr{first}, Pos: open.Pos}
	for p.accept(TokComma) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		cc.Elems = append(cc.Elems, e)
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return cc, nil
}

// parseNumberToken decodes a numeric literal token into a Number. x, z and
// ? digits decode to 0 in Value and set the corresponding bits of XMask
// (x) or ZMask (z and ?), positionally over the bits each digit spans; the
// IEEE left-extension of a leading x/z digit is not applied (documented
// substitution). Two-state consumers keep reading Value alone.
func parseNumberToken(tok Token) (Expr, error) {
	text := strings.ReplaceAll(tok.Text, "_", "")
	quote := strings.IndexByte(text, '\'')
	if quote < 0 {
		v, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return nil, &ParseError{Pos: tok.Pos, Msg: "invalid decimal literal"}
		}
		return &Number{Value: v, Pos: tok.Pos}, nil
	}
	width := 0
	if quote > 0 {
		w, err := strconv.Atoi(text[:quote])
		if err != nil || w <= 0 || w > 64 {
			return nil, &ParseError{Pos: tok.Pos, Msg: "unsupported literal width"}
		}
		width = w
	}
	rest := text[quote+1:]
	if rest != "" && (rest[0] == 's' || rest[0] == 'S') {
		rest = rest[1:]
	}
	if rest == "" {
		return nil, &ParseError{Pos: tok.Pos, Msg: "missing base in literal"}
	}
	base := byte(strings.ToLower(rest[:1])[0])
	digits := rest[1:]
	var v, xm, zm uint64
	switch base {
	case 'd':
		switch {
		case digits == "x" || digits == "X":
			xm = ^uint64(0)
		case digits == "z" || digits == "Z" || digits == "?":
			zm = ^uint64(0)
		default:
			for i := 0; i < len(digits); i++ {
				if c := digits[i]; c == 'x' || c == 'X' || c == 'z' || c == 'Z' || c == '?' {
					return nil, &ParseError{Pos: tok.Pos, Msg: "x/z must be the only digit of a decimal literal"}
				}
			}
			var err error
			v, err = strconv.ParseUint(digits, 10, 64)
			if err != nil {
				return nil, &ParseError{Pos: tok.Pos, Msg: "invalid digits in literal"}
			}
		}
	case 'b', 'o', 'h':
		g := uint(1)
		if base == 'o' {
			g = 3
		} else if base == 'h' {
			g = 4
		}
		gm := (uint64(1) << g) - 1
		for i := 0; i < len(digits); i++ {
			if (v|xm|zm)>>(64-g) != 0 {
				return nil, &ParseError{Pos: tok.Pos, Msg: "invalid digits in literal"}
			}
			v <<= g
			xm <<= g
			zm <<= g
			switch c := digits[i]; {
			case c == 'x' || c == 'X':
				xm |= gm
			case c == 'z' || c == 'Z' || c == '?':
				zm |= gm
			case c >= '0' && c <= '9':
				v |= uint64(c - '0')
			case c >= 'a' && c <= 'f':
				v |= uint64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				v |= uint64(c-'A') + 10
			default:
				return nil, &ParseError{Pos: tok.Pos, Msg: "invalid digits in literal"}
			}
		}
	default:
		return nil, &ParseError{Pos: tok.Pos, Msg: "invalid base in literal"}
	}
	if width > 0 && width < 64 {
		m := (uint64(1) << uint(width)) - 1
		v &= m
		xm &= m
		zm &= m
	}
	return &Number{Width: width, Base: base, Value: v, XMask: xm, ZMask: zm, Pos: tok.Pos}, nil
}
