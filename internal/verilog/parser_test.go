package verilog

import (
	"strings"
	"testing"
)

const accuSrc = `
module accu (
    input clk,
    input rst_n,
    input [7:0] in,
    input valid_in,
    output reg valid_out,
    output reg [9:0] data_out
);
    wire end_cnt;
    reg [1:0] count;

    assign end_cnt = valid_in && count == 2'd3;

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) count <= 0;
        else if (valid_in) count <= count + 1;
    end

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) valid_out <= 0;
        else if (end_cnt) valid_out <= 1;
        else valid_out <= 0;
    end

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) data_out <= 0;
        else if (valid_in) data_out <= data_out + in;
    end

    property valid_out_check;
        @(posedge clk) disable iff (!rst_n)
        end_cnt |-> ##1 valid_out == 1;
    endproperty

    valid_out_check_assertion: assert property (valid_out_check)
        else $error("valid_out should be high when end_cnt high");
endmodule
`

func TestParseAccu(t *testing.T) {
	m, err := Parse(accuSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Name != "accu" {
		t.Errorf("module name = %q, want accu", m.Name)
	}
	if len(m.Ports) != 6 {
		t.Fatalf("got %d ports, want 6", len(m.Ports))
	}
	wantPorts := []struct {
		name  string
		dir   PortDir
		width bool
	}{
		{"clk", DirInput, false},
		{"rst_n", DirInput, false},
		{"in", DirInput, true},
		{"valid_in", DirInput, false},
		{"valid_out", DirOutput, false},
		{"data_out", DirOutput, true},
	}
	for i, w := range wantPorts {
		p := m.Ports[i]
		if p.Name != w.name || p.Dir != w.dir || (p.Range != nil) != w.width {
			t.Errorf("port %d = {%s %s range=%v}, want %+v", i, p.Name, p.Dir, p.Range != nil, w)
		}
	}
	props := m.Properties()
	if len(props) != 1 {
		t.Fatalf("got %d properties, want 1", len(props))
	}
	prop := props[0]
	if prop.Name != "valid_out_check" {
		t.Errorf("property name = %q", prop.Name)
	}
	if prop.Clock.Edge != EdgePos || prop.Clock.Signal != "clk" {
		t.Errorf("property clock = %+v", prop.Clock)
	}
	if prop.DisableIff == nil {
		t.Error("property missing disable iff")
	}
	if prop.Seq.Impl != ImplOverlap {
		t.Errorf("implication = %v, want |->", prop.Seq.Impl)
	}
	if len(prop.Seq.Consequent) != 1 || prop.Seq.Consequent[0].DelayFromPrev != 1 {
		t.Errorf("consequent = %+v, want one term delayed by 1", prop.Seq.Consequent)
	}
	asserts := m.Asserts()
	if len(asserts) != 1 {
		t.Fatalf("got %d asserts, want 1", len(asserts))
	}
	if asserts[0].Label != "valid_out_check_assertion" {
		t.Errorf("assert label = %q", asserts[0].Label)
	}
	if asserts[0].Ref != "valid_out_check" {
		t.Errorf("assert ref = %q", asserts[0].Ref)
	}
	if !strings.Contains(asserts[0].ErrMsg, "valid_out should be high") {
		t.Errorf("assert message = %q", asserts[0].ErrMsg)
	}
}

func TestParseNumberLiterals(t *testing.T) {
	tests := []struct {
		src   string
		width int
		value uint64
	}{
		{"42", 0, 42},
		{"4'b1010", 4, 10},
		{"8'hFF", 8, 255},
		{"8'hff", 8, 255},
		{"12'o777", 12, 511},
		{"16'd1000", 16, 1000},
		{"4'b10_10", 4, 10},
		{"8'bxxxx_zz01", 8, 1}, // x/z decode as 0 (two-state)
		{"3'b111", 3, 7},
		{"1'b1", 1, 1},
		{"32'hDEAD_BEEF", 32, 0xDEADBEEF},
	}
	for _, tt := range tests {
		e, err := ParseExpr(tt.src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", tt.src, err)
			continue
		}
		n, ok := e.(*Number)
		if !ok {
			t.Errorf("ParseExpr(%q) = %T, want *Number", tt.src, e)
			continue
		}
		if n.Width != tt.width || n.Value != tt.value {
			t.Errorf("ParseExpr(%q) = width %d value %d, want width %d value %d",
				tt.src, n.Width, n.Value, tt.width, tt.value)
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	tests := []struct {
		src  string
		want string // canonical re-print
	}{
		{"a + b * c", "a + b * c"},
		{"(a + b) * c", "(a + b) * c"},
		{"a | b & c", "a | b & c"},
		{"!a && b", "!a && b"},
		{"a == b || c != d", "a == b || c != d"},
		{"a ? b : c ? d : e", "a ? b : c ? d : e"},
		{"~(a ^ b)", "~(a ^ b)"},
		{"a << 2 + 1", "a << 2 + 1"},
		{"&vec", "&vec"},
		{"a[3:0]", "a[3:0]"},
		{"{a, b, c}", "{a, b, c}"},
		{"{4{x}}", "{4{x}}"},
		{"$past(x, 1)", "$past(x, 1)"},
		{"a - b - c", "a - b - c"},
		{"a - (b - c)", "a - (b - c)"},
	}
	for _, tt := range tests {
		e, err := ParseExpr(tt.src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", tt.src, err)
			continue
		}
		got := ExprString(e)
		if got != tt.want {
			t.Errorf("ExprString(ParseExpr(%q)) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"missing endmodule", "module m (input a);"},
		{"missing semicolon", "module m (input a)\nendmodule"},
		{"bad port", "module m (42);\nendmodule"},
		{"bad statement", "module m (input a);\nalways @(posedge a) 42;\nendmodule"},
		{"unterminated string", "module m (input a);\ninitial x = \"oops;\nendmodule"},
		{"bad literal base", "module m (input a);\nwire w = 4'q1010;\nendmodule"},
		{"stray token after module", "module m (input a);\nendmodule\nwire x;"},
		{"missing end", "module m (input a);\nalways @(posedge a) begin\nendmodule"},
		{"missing endcase", "module m (input a, output reg o);\nalways @(*) begin\ncase (a)\n1'b1: o = 1;\nend\nendmodule"},
		{"bare identifier item", "module m (input a);\nfoo;\nendmodule"},
		{"assignment at module scope", "module m (input a);\nx = a;\nendmodule"},
		{"mixed named then positional conns", "module m (input a);\nsub u0 (.x(a), a);\nendmodule"},
		{"mixed positional then named conns", "module m (input a);\nsub u0 (a, .x(a));\nendmodule"},
		{"positional parameter override", "module m (input a);\nsub #(4) u0 (a);\nendmodule"},
		{"empty parameter override", "module m (input a);\nsub #(.P()) u0 (a);\nendmodule"},
	}
	for _, tt := range tests {
		if _, err := Parse(tt.src); err == nil {
			t.Errorf("%s: Parse succeeded, want error", tt.name)
		}
	}
}

// TestPreciseItemDiagnostic pins the replacement for the old generic
// "unsupported construct (e.g. module instantiation)" error: instantiation
// parses, and the remaining unsupported leading-identifier items name the
// offending token in the diagnostic.
func TestPreciseItemDiagnostic(t *testing.T) {
	_, err := Parse("module m (input a);\nfoo = a;\nendmodule")
	if err == nil {
		t.Fatal("Parse succeeded, want error")
	}
	msg := err.Error()
	for _, want := range []string{"=", `"foo"`, "instantiation"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic %q does not mention %q", msg, want)
		}
	}
}

func TestParseInstance(t *testing.T) {
	src := `
module top (
    input clk,
    output [3:0] q
);
    counter #(.WIDTH(4), .MAX(9)) u0 (.clk(clk), .q(q));
    counter u1 (clk, q);
    blackbox u2 ();
    stub u3 (.clk(clk), .q());
endmodule
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	insts := m.Instances()
	if len(insts) != 4 {
		t.Fatalf("got %d instances, want 4", len(insts))
	}
	u0 := insts[0]
	if u0.Module != "counter" || u0.Name != "u0" || u0.Positional {
		t.Errorf("u0 = %+v", u0)
	}
	if len(u0.Params) != 2 || u0.Params[0].Port != "WIDTH" || u0.Params[1].Port != "MAX" {
		t.Errorf("u0 params = %+v", u0.Params)
	}
	if len(u0.Conns) != 2 || u0.Conns[0].Port != "clk" || u0.Conns[1].Port != "q" {
		t.Errorf("u0 conns = %+v", u0.Conns)
	}
	u1 := insts[1]
	if !u1.Positional || len(u1.Conns) != 2 || u1.Conns[0].Port != "" {
		t.Errorf("u1 = %+v", u1)
	}
	if len(insts[2].Conns) != 0 {
		t.Errorf("u2 conns = %+v", insts[2].Conns)
	}
	u3 := insts[3]
	if len(u3.Conns) != 2 || u3.Conns[1].Port != "q" || u3.Conns[1].Expr != nil {
		t.Errorf("u3 conns = %+v", u3.Conns)
	}
}

const hierSrc = `
module counter #(parameter WIDTH = 4, parameter MAX = 9) (
    input clk,
    input rst_n,
    output reg [WIDTH-1:0] q
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) q <= 0;
        else if (q == MAX) q <= 0;
        else q <= q + 1;
    end
endmodule

module pair (
    input clk,
    input rst_n,
    output [3:0] a,
    output [2:0] b
);
    counter u0 (.clk(clk), .rst_n(rst_n), .q(a));
    counter #(.WIDTH(3), .MAX(5)) u1 (.clk(clk), .rst_n(rst_n), .q(b));
endmodule
`

func TestParseSet(t *testing.T) {
	set, err := ParseSet(hierSrc)
	if err != nil {
		t.Fatalf("ParseSet: %v", err)
	}
	if len(set.Modules) != 2 {
		t.Fatalf("got %d modules, want 2", len(set.Modules))
	}
	top, err := set.Top()
	if err != nil {
		t.Fatalf("Top: %v", err)
	}
	if top.Name != "pair" {
		t.Errorf("top = %q, want pair", top.Name)
	}
	if set.Find("counter") == nil || set.Find("nope") != nil {
		t.Error("Find misbehaved")
	}
}

func TestTopAmbiguous(t *testing.T) {
	set, err := ParseSet("module a (input x);\nendmodule\nmodule b (input x);\nendmodule")
	if err != nil {
		t.Fatalf("ParseSet: %v", err)
	}
	_, err = set.Top()
	if err == nil {
		t.Fatal("Top succeeded, want ambiguity error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "a") || !strings.Contains(msg, "b") || !strings.Contains(msg, "ambiguous") {
		t.Errorf("ambiguity error %q does not list candidates", msg)
	}
}

// TestSetRoundTrip checks the multi-module printer fixpoint and that
// hierarchical (dotted) identifiers survive lexing as single tokens.
func TestSetRoundTrip(t *testing.T) {
	set, err := ParseSet(hierSrc)
	if err != nil {
		t.Fatalf("ParseSet: %v", err)
	}
	text1 := PrintSet(set)
	set2, err := ParseSet(text1)
	if err != nil {
		t.Fatalf("reparse of printed set: %v\n%s", err, text1)
	}
	text2 := PrintSet(set2)
	if text1 != text2 {
		t.Errorf("PrintSet not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestLexHierarchicalName(t *testing.T) {
	toks, err := Lex("assign u0.q = u0.u1.count + 1; .clk(clk)")
	if err != nil {
		t.Fatal(err)
	}
	var idents []string
	for _, tok := range toks {
		if tok.Kind == TokIdent {
			idents = append(idents, tok.Text)
		}
	}
	want := []string{"u0.q", "u0.u1.count", "clk", "clk"}
	if len(idents) != len(want) {
		t.Fatalf("idents = %v, want %v", idents, want)
	}
	for i, w := range want {
		if idents[i] != w {
			t.Errorf("ident %d = %q, want %q", i, idents[i], w)
		}
	}
	// The leading dot of a named connection must stay a separate token.
	sawDot := false
	for _, tok := range toks {
		if tok.Kind == TokDot {
			sawDot = true
		}
	}
	if !sawDot {
		t.Error("named-connection dot was swallowed into an identifier")
	}
}

// TestPrintRoundTrip checks the printer fixpoint property: parse → print →
// parse → print must be stable, and the second parse must succeed.
func TestPrintRoundTrip(t *testing.T) {
	srcs := []string{accuSrc, `
module ctl (
    input clk,
    input rst_n,
    input [3:0] sel,
    output reg [7:0] out
);
    localparam IDLE = 0;
    reg [7:0] tmp;
    always @(*) begin
        case (sel)
            4'd0: tmp = 8'h01;
            4'd1, 4'd2: tmp = 8'h02;
            default: tmp = 8'hFF;
        endcase
    end
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) out <= 0;
        else out <= tmp;
    end
    assert property (@(posedge clk) disable iff (!rst_n) sel == 0 |=> out == 8'h01);
endmodule
`}
	for i, src := range srcs {
		m1, err := Parse(src)
		if err != nil {
			t.Fatalf("src %d: first parse: %v", i, err)
		}
		text1 := Print(m1)
		m2, err := Parse(text1)
		if err != nil {
			t.Fatalf("src %d: reparse of printed output: %v\n%s", i, err, text1)
		}
		text2 := Print(m2)
		if text1 != text2 {
			t.Errorf("src %d: print not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", i, text1, text2)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("module m;\n  wire x;\nendmodule\n")
	if err != nil {
		t.Fatal(err)
	}
	// tokens: module m ; wire x ; endmodule EOF
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("module pos = %v", toks[0].Pos)
	}
	if toks[3].Kind != TokWire || toks[3].Pos.Line != 2 || toks[3].Pos.Col != 3 {
		t.Errorf("wire tok = %v at %v", toks[3], toks[3].Pos)
	}
	if toks[6].Kind != TokEndmodule || toks[6].Pos.Line != 3 {
		t.Errorf("endmodule tok = %v at %v", toks[6], toks[6].Pos)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("wire // comment\n/* block\ncomment */ x `define FOO 1\n;")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokWire, TokIdent, TokSemi, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens %v, want %d", len(toks), toks, len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i], k)
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := "|-> |=> ## # <= < << >= > >> >>> == != === !== && & || | ~^ ^~ -> -"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokImplies, TokImpliesNon, TokHashHash, TokHash,
		TokLE, TokLT, TokShl, TokGE, TokGT, TokShr, TokAShr,
		TokEqEq, TokNotEq, TokCaseEq, TokCaseNe,
		TokAndAnd, TokAmp, TokOrOr, TokPipe, TokTildeCaret, TokTildeCaret,
		TokArrow, TokMinus, TokEOF,
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i], k)
		}
	}
}

func TestNonANSIPorts(t *testing.T) {
	src := `
module legacy (a, b, y);
    input a;
    input b;
    output y;
    assign y = a & b;
endmodule
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(m.Ports) != 3 {
		t.Fatalf("got %d ports, want 3", len(m.Ports))
	}
	if m.Ports[2].Dir != DirOutput {
		t.Errorf("port y dir = %v, want output", m.Ports[2].Dir)
	}
}

func TestParamModule(t *testing.T) {
	src := `
module cnt #(parameter WIDTH = 4, parameter MAX = 9) (
    input clk,
    output reg [WIDTH-1:0] q
);
    always @(posedge clk) begin
        if (q == MAX) q <= 0;
        else q <= q + 1;
    end
endmodule
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var params []*ParamDecl
	for _, it := range m.Items {
		if p, ok := it.(*ParamDecl); ok {
			params = append(params, p)
		}
	}
	if len(params) != 2 || params[0].Name != "WIDTH" || params[1].Name != "MAX" {
		t.Errorf("params = %+v", params)
	}
}

func TestExprIdents(t *testing.T) {
	e, err := ParseExpr("a + b[3] * (c ? d : $past(e))")
	if err != nil {
		t.Fatal(err)
	}
	ids := ExprIdents(e)
	for _, want := range []string{"a", "b", "c", "d", "e"} {
		if !ids[want] {
			t.Errorf("missing identifier %q in %v", want, ids)
		}
	}
	if len(ids) != 5 {
		t.Errorf("got %d idents, want 5: %v", len(ids), ids)
	}
}
