package verilog

import (
	"fmt"
	"strings"
)

// Print renders a module as canonical Verilog text. The output is
// deterministic: parsing the result and printing it again yields identical
// text. Downstream packages rely on this to identify buggy lines by their
// printed line number and text.
func Print(m *Module) string {
	var pr printer
	pr.module(m)
	return pr.sb.String()
}

// PrintSet renders a source set as canonical Verilog text, one blank line
// between modules. ParseSet(PrintSet(s)) round-trips byte-identically.
func PrintSet(s *SourceSet) string {
	parts := make([]string, len(s.Modules))
	for i, m := range s.Modules {
		parts[i] = Print(m)
	}
	return strings.Join(parts, "\n")
}

// ExprString renders an expression with minimal parentheses.
func ExprString(e Expr) string {
	var pr printer
	return pr.expr(e, 0)
}

// StmtString renders a single statement at zero indentation, useful for
// dataset "answer" snippets.
func StmtString(s Stmt) string {
	var pr printer
	pr.stmt(s, 0)
	return strings.TrimRight(pr.sb.String(), "\n")
}

type printer struct {
	sb strings.Builder
}

func (pr *printer) writef(format string, args ...any) {
	fmt.Fprintf(&pr.sb, format, args...)
}

func (pr *printer) indent(level int) {
	for i := 0; i < level; i++ {
		pr.sb.WriteString("    ")
	}
}

func (pr *printer) module(m *Module) {
	// Parameter ports are printed in the body, keeping the header simple and
	// line numbering stable.
	pr.writef("module %s (\n", m.Name)
	for i, p := range m.Ports {
		pr.indent(1)
		pr.sb.WriteString(p.Dir.String())
		if p.IsReg {
			pr.sb.WriteString(" reg")
		}
		if p.Range != nil {
			pr.writef(" [%s:%s]", pr.expr(p.Range.Hi, 0), pr.expr(p.Range.Lo, 0))
		}
		pr.writef(" %s", p.Name)
		if i < len(m.Ports)-1 {
			pr.sb.WriteString(",")
		}
		pr.sb.WriteString("\n")
	}
	pr.sb.WriteString(");\n")
	for _, it := range m.Items {
		pr.item(it)
	}
	pr.sb.WriteString("endmodule\n")
}

func (pr *printer) item(it Item) {
	switch x := it.(type) {
	case *CommentItem:
		pr.indent(1)
		pr.writef("// %s\n", x.Text)
	case *ParamDecl:
		pr.indent(1)
		kw := "parameter"
		if x.IsLocal {
			kw = "localparam"
		}
		pr.writef("%s %s = %s;\n", kw, x.Name, pr.expr(x.Value, 0))
	case *NetDecl:
		pr.indent(1)
		pr.sb.WriteString(x.Kind.String())
		if x.Range != nil {
			pr.writef(" [%s:%s]", pr.expr(x.Range.Hi, 0), pr.expr(x.Range.Lo, 0))
		}
		pr.writef(" %s", strings.Join(x.Names, ", "))
		if x.Init != nil {
			pr.writef(" = %s", pr.expr(x.Init, 0))
		}
		pr.sb.WriteString(";\n")
	case *AssignItem:
		pr.indent(1)
		pr.writef("assign %s = %s;\n", pr.expr(x.LHS, 0), pr.expr(x.RHS, 0))
	case *Instance:
		pr.indent(1)
		pr.sb.WriteString(x.Module)
		if len(x.Params) > 0 {
			parts := make([]string, len(x.Params))
			for i, pc := range x.Params {
				parts[i] = fmt.Sprintf(".%s(%s)", pc.Port, pr.expr(pc.Expr, 0))
			}
			pr.writef(" #(%s)", strings.Join(parts, ", "))
		}
		pr.writef(" %s (", x.Name)
		for i, pc := range x.Conns {
			if i > 0 {
				pr.sb.WriteString(", ")
			}
			if x.Positional {
				pr.sb.WriteString(pr.expr(pc.Expr, 0))
			} else {
				pr.writef(".%s(", pc.Port)
				if pc.Expr != nil {
					pr.sb.WriteString(pr.expr(pc.Expr, 0))
				}
				pr.sb.WriteString(")")
			}
		}
		pr.sb.WriteString(");\n")
	case *Always:
		pr.always(x)
	case *Initial:
		pr.indent(1)
		pr.sb.WriteString("initial ")
		pr.stmtInline(x.Body, 1)
	case *PropertyDecl:
		pr.indent(1)
		pr.writef("property %s;\n", x.Name)
		pr.indent(2)
		pr.writef("@(%s %s)", edgeName(x.Clock.Edge), x.Clock.Signal)
		if x.DisableIff != nil {
			pr.writef(" disable iff (%s)", pr.expr(x.DisableIff, 0))
		}
		pr.sb.WriteString("\n")
		pr.indent(2)
		pr.writef("%s;\n", pr.seqExpr(x.Seq))
		pr.indent(1)
		pr.sb.WriteString("endproperty\n")
	case *AssertItem:
		pr.indent(1)
		if x.Label != "" {
			pr.writef("%s: ", x.Label)
		}
		if x.Ref != "" {
			pr.writef("assert property (%s)", x.Ref)
		} else {
			pr.writef("assert property (@(%s %s)", edgeName(x.Clock.Edge), x.Clock.Signal)
			if x.DisableIff != nil {
				pr.writef(" disable iff (%s)", pr.expr(x.DisableIff, 0))
			}
			pr.writef(" %s)", pr.seqExpr(x.Seq))
		}
		if x.ErrMsg != "" {
			pr.writef("\n")
			pr.indent(2)
			pr.writef("else $error(%q)", x.ErrMsg)
		}
		pr.sb.WriteString(";\n")
	}
}

func edgeName(e EdgeKind) string {
	switch e {
	case EdgePos:
		return "posedge"
	case EdgeNeg:
		return "negedge"
	default:
		return ""
	}
}

func (pr *printer) seqExpr(s *SeqExpr) string {
	var sb strings.Builder
	writeSeq := func(terms []SeqTerm) {
		for i, t := range terms {
			// Later terms always carry their ##N separator — including
			// ##0 (same-cycle fusion), which is still a term boundary and
			// must survive reparsing.
			if i > 0 {
				fmt.Fprintf(&sb, " ##%d ", t.DelayFromPrev)
			} else if t.DelayFromPrev > 0 {
				fmt.Fprintf(&sb, "##%d ", t.DelayFromPrev)
			}
			sb.WriteString(pr.expr(t.Expr, 0))
		}
	}
	if s.Impl != ImplNone {
		writeSeq(s.Antecedent)
		if s.Impl == ImplOverlap {
			sb.WriteString(" |-> ")
		} else {
			sb.WriteString(" |=> ")
		}
	}
	writeSeq(s.Consequent)
	return sb.String()
}

func (pr *printer) always(a *Always) {
	pr.indent(1)
	switch a.Kind {
	case AlwaysFF:
		pr.sb.WriteString("always_ff ")
	case AlwaysComb:
		pr.sb.WriteString("always_comb ")
	default:
		pr.sb.WriteString("always ")
	}
	if a.Kind != AlwaysComb {
		if len(a.Events) == 0 {
			pr.sb.WriteString("@(*) ")
		} else {
			pr.sb.WriteString("@(")
			for i, ev := range a.Events {
				if i > 0 {
					pr.sb.WriteString(" or ")
				}
				if name := edgeName(ev.Edge); name != "" {
					pr.writef("%s %s", name, ev.Signal)
				} else {
					pr.sb.WriteString(ev.Signal)
				}
			}
			pr.sb.WriteString(") ")
		}
	}
	pr.stmtInline(a.Body, 1)
}

// stmtInline prints a statement that begins on the current line (after
// "always @(...) " or "else ") at the given indent level.
func (pr *printer) stmtInline(s Stmt, level int) {
	switch x := s.(type) {
	case *Block:
		pr.sb.WriteString("begin")
		if x.Label != "" {
			pr.writef(" : %s", x.Label)
		}
		pr.sb.WriteString("\n")
		for _, sub := range x.Stmts {
			pr.stmt(sub, level+1)
		}
		pr.indent(level)
		pr.sb.WriteString("end\n")
	default:
		pr.sb.WriteString("\n")
		pr.stmt(s, level+1)
	}
}

// stmt prints a statement starting at a fresh line with the given indent.
func (pr *printer) stmt(s Stmt, level int) {
	switch x := s.(type) {
	case *Block:
		pr.indent(level)
		pr.stmtInline(x, level)
	case *NonBlocking:
		pr.indent(level)
		pr.writef("%s <= %s;\n", pr.expr(x.LHS, 0), pr.expr(x.RHS, 0))
	case *Blocking:
		pr.indent(level)
		pr.writef("%s = %s;\n", pr.expr(x.LHS, 0), pr.expr(x.RHS, 0))
	case *If:
		pr.ifChain(x, level, false)
	case *Case:
		pr.indent(level)
		kw := "case"
		if x.IsCasez {
			kw = "casez"
		}
		pr.writef("%s (%s)\n", kw, pr.expr(x.Subject, 0))
		for _, item := range x.Items {
			pr.indent(level + 1)
			if item.Exprs == nil {
				pr.sb.WriteString("default: ")
			} else {
				labels := make([]string, len(item.Exprs))
				for i, e := range item.Exprs {
					labels[i] = pr.expr(e, 0)
				}
				pr.writef("%s: ", strings.Join(labels, ", "))
			}
			pr.caseBody(item.Body, level+1)
		}
		pr.indent(level)
		pr.sb.WriteString("endcase\n")
	}
}

// caseBody prints a case-arm body: simple assignments stay on the label's
// line; blocks open begin/end.
func (pr *printer) caseBody(s Stmt, level int) {
	switch x := s.(type) {
	case *NonBlocking:
		pr.writef("%s <= %s;\n", pr.expr(x.LHS, 0), pr.expr(x.RHS, 0))
	case *Blocking:
		pr.writef("%s = %s;\n", pr.expr(x.LHS, 0), pr.expr(x.RHS, 0))
	case *Block:
		pr.stmtInline(x, level)
	default:
		pr.sb.WriteString("\n")
		pr.stmt(s, level+1)
	}
}

// ifChain prints if / else-if / else chains. Simple one-statement branches
// are printed inline on the same line as their condition; block branches use
// begin/end. cont is true when this if continues an "else".
func (pr *printer) ifChain(x *If, level int, cont bool) {
	if !cont {
		pr.indent(level)
	}
	pr.writef("if (%s) ", pr.expr(x.Cond, 0))
	then := x.Then
	if x.Else != nil && swallowsElse(then) {
		// Dangling else: printed inline, the then-branch's trailing
		// else-less if would capture this if's else on reparse. Wrap it in
		// an explicit begin/end so the printed text keeps the AST's
		// association.
		then = &Block{Stmts: []Stmt{then}, Pos: then.Span()}
	}
	pr.branchBody(then, level)
	if x.Else == nil {
		return
	}
	pr.indent(level)
	pr.sb.WriteString("else ")
	if elif, ok := x.Else.(*If); ok {
		pr.ifChain(elif, level, true)
		return
	}
	pr.branchBody(x.Else, level)
}

// swallowsElse reports whether s, printed inline right before an "else",
// would capture that else on reparse: its trailing if/else-if chain ends in
// an if with no else branch. Blocks and case statements are closed by their
// end/endcase keyword and never capture.
func swallowsElse(s Stmt) bool {
	x, ok := s.(*If)
	if !ok {
		return false
	}
	if x.Else == nil {
		return true
	}
	return swallowsElse(x.Else)
}

func (pr *printer) branchBody(s Stmt, level int) {
	switch b := s.(type) {
	case *Block:
		pr.stmtInline(b, level)
	case *NonBlocking:
		pr.writef("%s <= %s;\n", pr.expr(b.LHS, 0), pr.expr(b.RHS, 0))
	case *Blocking:
		pr.writef("%s = %s;\n", pr.expr(b.LHS, 0), pr.expr(b.RHS, 0))
	case *If:
		pr.sb.WriteString("\n")
		pr.stmt(b, level+1)
	case *Case:
		pr.sb.WriteString("\n")
		pr.stmt(b, level+1)
	default:
		pr.sb.WriteString(";\n")
	}
}

// tight removes the spaces of an already-rendered expression, the style
// used inside bit- and part-select brackets: req[(ptr+1)%3], a[3:0]. A
// space is kept when deleting it would fuse its neighbours into a
// different token: operator pairs ("a & &b" must not become "a&&b", nor
// "a ^ ~b" the xnor "a^~b"), and a ternary '?' after a numeric literal
// ('?' is a valid z-digit, so "4'h1 ? a : b" must not become the
// literal-swallowing "4'h1?a:b").
func tight(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			if i > 0 && i+1 < len(s) {
				l, r := s[i-1], s[i+1]
				if (opChar(l) && opChar(r)) || (r == '?' && literalChar(l)) {
					b.WriteByte(' ')
				}
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// opChar reports whether c can begin or end a multi-character operator.
func opChar(c byte) bool {
	switch c {
	case '&', '|', '^', '~', '!', '<', '>', '=', '+', '-', '*', '/', '%':
		return true
	}
	return false
}

// literalChar reports whether c can end a numeric literal, whose digit run
// could otherwise extend over a following '?'.
func literalChar(c byte) bool {
	return c == '_' || c == '\'' ||
		(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// exprPrec returns the printing precedence of an expression node; larger
// binds tighter. Primaries return 100.
func exprPrec(e Expr) int {
	switch x := e.(type) {
	case *Ternary:
		return 0
	case *Binary:
		_, prec := binPrecOfOp(x.Op)
		return prec
	case *Unary:
		return 11
	default:
		return 100
	}
}

func binPrecOfOp(op BinaryOp) (BinaryOp, int) {
	switch op {
	case BinLogOr:
		return op, 1
	case BinLogAnd:
		return op, 2
	case BinOr:
		return op, 3
	case BinXor, BinXnor:
		return op, 4
	case BinAnd:
		return op, 5
	case BinEq, BinNe, BinCaseEq, BinCaseNe:
		return op, 6
	case BinLt, BinLe, BinGt, BinGe:
		return op, 7
	case BinShl, BinShr, BinAShr:
		return op, 8
	case BinAdd, BinSub:
		return op, 9
	default:
		return op, 10
	}
}

// expr renders e, inserting parentheses when e binds more loosely than its
// context requires.
func (pr *printer) expr(e Expr, minPrec int) string {
	var s string
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *Number:
		return NumberText(x)
	case *StringLit:
		return fmt.Sprintf("%q", x.Value)
	case *Unary:
		s = x.Op.String() + pr.expr(x.X, 12)
		if 11 < minPrec {
			s = "(" + s + ")"
		}
		return s
	case *Binary:
		_, prec := binPrecOfOp(x.Op)
		left := pr.expr(x.X, prec)
		right := pr.expr(x.Y, prec+1)
		s = fmt.Sprintf("%s %s %s", left, x.Op, right)
		if prec < minPrec {
			s = "(" + s + ")"
		}
		return s
	case *Ternary:
		s = fmt.Sprintf("%s ? %s : %s", pr.expr(x.Cond, 1), pr.expr(x.X, 1), pr.expr(x.Y, 0))
		if 0 < minPrec {
			s = "(" + s + ")"
		}
		return s
	case *Index:
		return fmt.Sprintf("%s[%s]", pr.expr(x.X, 100), tight(pr.expr(x.Idx, 0)))
	case *Slice:
		return fmt.Sprintf("%s[%s:%s]", pr.expr(x.X, 100), tight(pr.expr(x.Hi, 0)), tight(pr.expr(x.Lo, 0)))
	case *Concat:
		parts := make([]string, len(x.Elems))
		for i, el := range x.Elems {
			parts[i] = pr.expr(el, 0)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *Repl:
		return fmt.Sprintf("{%s{%s}}", pr.expr(x.Count, 100), pr.expr(x.Elem, 0))
	case *Call:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = pr.expr(a, 0)
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(parts, ", "))
	}
	return s
}
