package verilog

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genExpr builds a random expression tree of bounded depth from a seed,
// covering all node kinds the printer and parser share.
func genExpr(rng *rand.Rand, depth int) Expr {
	names := []string{"a", "b", "count", "valid_in", "state"}
	if depth <= 0 {
		if rng.Intn(2) == 0 {
			return &Ident{Name: names[rng.Intn(len(names))]}
		}
		switch rng.Intn(3) {
		case 0:
			return &Number{Value: uint64(rng.Intn(1000))}
		case 1:
			return &Number{Width: 4, Base: 'd', Value: uint64(rng.Intn(16))}
		default:
			return &Number{Width: 8, Base: 'h', Value: uint64(rng.Intn(256))}
		}
	}
	switch rng.Intn(8) {
	case 0:
		ops := []UnaryOp{UnaryLogicalNot, UnaryBitNot, UnaryRedAnd, UnaryRedOr, UnaryRedXor}
		return &Unary{Op: ops[rng.Intn(len(ops))], X: genExpr(rng, depth-1)}
	case 1, 2, 3:
		ops := []BinaryOp{
			BinAdd, BinSub, BinMul, BinAnd, BinOr, BinXor, BinLogAnd, BinLogOr,
			BinEq, BinNe, BinLt, BinLe, BinGt, BinGe, BinShl, BinShr,
		}
		return &Binary{Op: ops[rng.Intn(len(ops))], X: genExpr(rng, depth-1), Y: genExpr(rng, depth-1)}
	case 4:
		return &Ternary{Cond: genExpr(rng, depth-1), X: genExpr(rng, depth-1), Y: genExpr(rng, depth-1)}
	case 5:
		return &Index{X: &Ident{Name: names[rng.Intn(len(names))]}, Idx: &Number{Value: uint64(rng.Intn(8))}}
	case 6:
		lo := uint64(rng.Intn(4))
		return &Slice{X: &Ident{Name: names[rng.Intn(len(names))]},
			Hi: &Number{Value: lo + 1 + uint64(rng.Intn(4))}, Lo: &Number{Value: lo}}
	default:
		return &Concat{Elems: []Expr{genExpr(rng, depth-1), genExpr(rng, depth-1)}}
	}
}

// TestQuickExprRoundTrip: for any generated expression, printing and
// reparsing yields a tree that prints identically (print is a fixpoint
// through the parser).
func TestQuickExprRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 4)
		text := ExprString(e)
		back, err := ParseExpr(text)
		if err != nil {
			t.Logf("parse error on %q: %v", text, err)
			return false
		}
		return ExprString(back) == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCloneIndependence: mutating a cloned expression never changes
// the original.
func TestQuickCloneIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 4)
		before := ExprString(e)
		clone := CloneExpr(e)
		// Mutate every number and ident in the clone.
		WalkExpr(clone, func(sub Expr) {
			switch x := sub.(type) {
			case *Number:
				x.Value++
			case *Ident:
				x.Name = "mutated"
			}
		})
		return ExprString(e) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNumberRoundTrip: any sized literal survives print -> lex ->
// parse with identical width and value.
func TestQuickNumberRoundTrip(t *testing.T) {
	f := func(raw uint64, widthSel uint8, baseSel uint8) bool {
		width := int(widthSel%16) + 1
		bases := []byte{'b', 'o', 'd', 'h'}
		n := &Number{
			Width: width,
			Base:  bases[int(baseSel)%len(bases)],
			Value: raw & ((1 << uint(width)) - 1),
		}
		text := NumberText(n)
		back, err := ParseExpr(text)
		if err != nil {
			return false
		}
		bn, ok := back.(*Number)
		return ok && bn.Width == n.Width && bn.Value == n.Value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLexerNeverPanics: the lexer terminates without panicking on
// arbitrary byte soup (errors are fine; hangs and panics are not).
func TestQuickLexerNeverPanics(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			n := rng.Intn(60)
			b := make([]byte, n)
			for i := range b {
				b[i] = byte(rng.Intn(128))
			}
			vals[0] = reflect.ValueOf(string(b))
		},
	}
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("lexer panicked on %q: %v", src, r)
			}
		}()
		toks, err := Lex(src)
		_ = err
		return len(toks) <= len(src)+1
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParserNeverPanics: same guarantee for the parser.
func TestQuickParserNeverPanics(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 400,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			// Token soup assembled from plausible fragments parses or
			// errors, never panics.
			frags := []string{
				"module", "endmodule", "m", "(", ")", ";", "input", "output",
				"wire", "reg", "assign", "=", "<=", "always", "@", "posedge",
				"clk", "begin", "end", "if", "else", "[3:0]", "a", "b", "+",
				"property", "endproperty", "assert", "|->", "##1", "4'd9",
			}
			var sb []byte
			for i := 0; i < rng.Intn(40); i++ {
				sb = append(sb, frags[rng.Intn(len(frags))]...)
				sb = append(sb, ' ')
			}
			vals[0] = reflect.ValueOf(string(sb))
		},
	}
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
