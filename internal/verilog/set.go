package verilog

import (
	"fmt"
	"sort"
	"strings"
)

// SourceSet is the parse result of a source file containing one or more
// modules, in source order. A set with a single module behaves exactly
// like the historical single-module front end; multi-module sets are
// flattened by elaboration starting from the top module.
type SourceSet struct {
	Modules []*Module
}

// Find returns the module with the given name, or nil.
func (s *SourceSet) Find(name string) *Module {
	for _, m := range s.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Top returns the top module of the set: the unique module that no other
// module in the set instantiates. Instantiations of modules outside the
// set do not count (they fail later, during elaboration). The error for
// an ambiguous set lists every candidate so callers can surface a precise
// diagnostic.
func (s *SourceSet) Top() (*Module, error) {
	if len(s.Modules) == 0 {
		return nil, fmt.Errorf("source set has no modules")
	}
	if len(s.Modules) == 1 {
		return s.Modules[0], nil
	}
	byName := map[string]*Module{}
	for _, m := range s.Modules {
		if byName[m.Name] != nil {
			return nil, fmt.Errorf("duplicate module %s", m.Name)
		}
		byName[m.Name] = m
	}
	instantiated := map[string]bool{}
	for _, m := range s.Modules {
		for _, inst := range m.Instances() {
			if byName[inst.Module] != nil && inst.Module != m.Name {
				instantiated[inst.Module] = true
			}
		}
	}
	var tops []string
	for _, m := range s.Modules {
		if !instantiated[m.Name] {
			tops = append(tops, m.Name)
		}
	}
	switch len(tops) {
	case 1:
		return byName[tops[0]], nil
	case 0:
		return nil, fmt.Errorf("no top module: every module in the set is instantiated (instantiation cycle)")
	default:
		sort.Strings(tops)
		return nil, fmt.Errorf("ambiguous top module: candidates %s are never instantiated", strings.Join(tops, ", "))
	}
}
