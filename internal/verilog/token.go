package verilog

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds. Operators carry their own kind so the parser can switch on
// them directly.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokSysIdent // $-prefixed identifier such as $past or $error
	TokNumber   // any numeric literal, sized or not
	TokString   // "..." string literal

	// Keywords.
	TokModule
	TokEndmodule
	TokInput
	TokOutput
	TokInout
	TokWire
	TokReg
	TokLogic
	TokInteger
	TokParameter
	TokLocalparam
	TokAssign
	TokAlways
	TokAlwaysFF
	TokAlwaysComb
	TokInitial
	TokBegin
	TokEnd
	TokIf
	TokElse
	TokCase
	TokCasez
	TokEndcase
	TokDefault
	TokFor
	TokPosedge
	TokNegedge
	TokOr
	TokProperty
	TokEndproperty
	TokAssert
	TokDisable
	TokIff
	TokGenvar
	TokFunction
	TokEndfunction
	TokSigned

	// Punctuation.
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokLBrace
	TokRBrace
	TokSemi
	TokComma
	TokColon
	TokDot
	TokAt
	TokHash     // #
	TokHashHash // ##
	TokQuestion

	// Operators.
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokTildeCaret // ~^ or ^~ (xnor)
	TokTilde
	TokBang
	TokAndAnd
	TokOrOr
	TokEq     // =
	TokEqEq   // ==
	TokNotEq  // !=
	TokCaseEq // ===
	TokCaseNe // !==
	TokLT
	TokLE // <= (also nonblocking assignment, disambiguated by parser)
	TokGT
	TokGE
	TokShl
	TokShr
	TokAShr       // >>>
	TokImplies    // |->
	TokImpliesNon // |=>
	TokArrow      // ->
)

var tokenNames = map[TokenKind]string{
	TokEOF:         "EOF",
	TokIdent:       "identifier",
	TokSysIdent:    "system identifier",
	TokNumber:      "number",
	TokString:      "string",
	TokModule:      "module",
	TokEndmodule:   "endmodule",
	TokInput:       "input",
	TokOutput:      "output",
	TokInout:       "inout",
	TokWire:        "wire",
	TokReg:         "reg",
	TokLogic:       "logic",
	TokInteger:     "integer",
	TokParameter:   "parameter",
	TokLocalparam:  "localparam",
	TokAssign:      "assign",
	TokAlways:      "always",
	TokAlwaysFF:    "always_ff",
	TokAlwaysComb:  "always_comb",
	TokInitial:     "initial",
	TokBegin:       "begin",
	TokEnd:         "end",
	TokIf:          "if",
	TokElse:        "else",
	TokCase:        "case",
	TokCasez:       "casez",
	TokEndcase:     "endcase",
	TokDefault:     "default",
	TokFor:         "for",
	TokPosedge:     "posedge",
	TokNegedge:     "negedge",
	TokOr:          "or",
	TokProperty:    "property",
	TokEndproperty: "endproperty",
	TokAssert:      "assert",
	TokDisable:     "disable",
	TokIff:         "iff",
	TokGenvar:      "genvar",
	TokFunction:    "function",
	TokEndfunction: "endfunction",
	TokSigned:      "signed",
	TokLParen:      "(",
	TokRParen:      ")",
	TokLBracket:    "[",
	TokRBracket:    "]",
	TokLBrace:      "{",
	TokRBrace:      "}",
	TokSemi:        ";",
	TokComma:       ",",
	TokColon:       ":",
	TokDot:         ".",
	TokAt:          "@",
	TokHash:        "#",
	TokHashHash:    "##",
	TokQuestion:    "?",
	TokPlus:        "+",
	TokMinus:       "-",
	TokStar:        "*",
	TokSlash:       "/",
	TokPercent:     "%",
	TokAmp:         "&",
	TokPipe:        "|",
	TokCaret:       "^",
	TokTildeCaret:  "~^",
	TokTilde:       "~",
	TokBang:        "!",
	TokAndAnd:      "&&",
	TokOrOr:        "||",
	TokEq:          "=",
	TokEqEq:        "==",
	TokNotEq:       "!=",
	TokCaseEq:      "===",
	TokCaseNe:      "!==",
	TokLT:          "<",
	TokLE:          "<=",
	TokGT:          ">",
	TokGE:          ">=",
	TokShl:         "<<",
	TokShr:         ">>",
	TokAShr:        ">>>",
	TokImplies:     "|->",
	TokImpliesNon:  "|=>",
	TokArrow:       "->",
}

// String returns the canonical spelling of the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"module":      TokModule,
	"endmodule":   TokEndmodule,
	"input":       TokInput,
	"output":      TokOutput,
	"inout":       TokInout,
	"wire":        TokWire,
	"reg":         TokReg,
	"logic":       TokLogic,
	"integer":     TokInteger,
	"parameter":   TokParameter,
	"localparam":  TokLocalparam,
	"assign":      TokAssign,
	"always":      TokAlways,
	"always_ff":   TokAlwaysFF,
	"always_comb": TokAlwaysComb,
	"initial":     TokInitial,
	"begin":       TokBegin,
	"end":         TokEnd,
	"if":          TokIf,
	"else":        TokElse,
	"case":        TokCase,
	"casez":       TokCasez,
	"endcase":     TokEndcase,
	"default":     TokDefault,
	"for":         TokFor,
	"posedge":     TokPosedge,
	"negedge":     TokNegedge,
	"or":          TokOr,
	"property":    TokProperty,
	"endproperty": TokEndproperty,
	"assert":      TokAssert,
	"disable":     TokDisable,
	"iff":         TokIff,
	"genvar":      TokGenvar,
	"function":    TokFunction,
	"endfunction": TokEndfunction,
	"signed":      TokSigned,
}

// Pos is a source position, 1-based.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source position and raw text.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokSysIdent, TokNumber, TokString:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
